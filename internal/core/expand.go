package core

import (
	"sort"

	"github.com/sharon-project/sharon/internal/query"
)

// ExpandConfig bounds the §7.1 sharing-conflict resolution, whose option
// sets are exponential in the conflict degree (Eq. 14).
type ExpandConfig struct {
	// MaxOptionsPerCandidate caps |Op| for one candidate (0 = DefaultMaxOptions).
	MaxOptionsPerCandidate int
	// MaxTotalVertices caps the expanded graph size; once reached,
	// remaining candidates contribute only their original vertex
	// (0 = DefaultMaxVertices). Bounds the O(|V'|^2) conflict recomputation.
	MaxTotalVertices int
}

// DefaultMaxOptions is the default cap on options generated per candidate.
const DefaultMaxOptions = 256

// DefaultMaxVertices is the default cap on the expanded graph size.
const DefaultMaxVertices = 2048

// ExpandOptions implements Algorithm 5 (sharing candidate expansion): it
// builds, breadth-first, the tree of options for vertex vi of g. Each
// option shares the same pattern with a subset Q'p of the original
// queries, obtained by dropping query combinations that cause conflicts
// with other candidates. The original candidate is option zero.
func ExpandOptions(g *Graph, vi int, byID map[int]*query.Query, cfg ExpandConfig) []Candidate {
	maxOpts := cfg.MaxOptionsPerCandidate
	if maxOpts <= 0 {
		maxOpts = DefaultMaxOptions
	}
	orig := g.Vertices[vi].Candidate
	options := []Candidate{orig}
	seen := map[string]bool{orig.Key(): true}

	// Conflicts of the original candidate; options only ever shrink the
	// query set, so no new conflicts appear during expansion.
	neighbors := g.Neighbors(vi)

	queue := []Candidate{orig}
	for len(queue) > 0 && len(options) < maxOpts {
		cur := queue[0]
		queue = queue[1:]
		for _, ui := range neighbors {
			u := g.Vertices[ui].Candidate
			// Queries in cur still causing the conflict with u.
			var qc []int
			for _, id := range cur.CommonQueries(u) {
				q, ok := byID[id]
				if !ok {
					continue
				}
				if PatternsOverlapIn(q, cur.Pattern, u.Pattern) {
					qc = append(qc, id)
				}
			}
			if len(qc) == 0 {
				continue
			}
			// Every non-empty combination C of the causing queries can be
			// dropped from cur's side to (partially) resolve the conflict
			// (Definition 16: the counterpart set is dropped from u's own
			// option set, generated independently).
			for mask := 1; mask < 1<<uint(len(qc)); mask++ {
				drop := make(map[int]bool, len(qc))
				for b := 0; b < len(qc); b++ {
					if mask&(1<<uint(b)) != 0 {
						drop[qc[b]] = true
					}
				}
				var rest []int
				for _, id := range cur.Queries {
					if !drop[id] {
						rest = append(rest, id)
					}
				}
				if len(rest) < 2 {
					continue // sharing needs at least two queries
				}
				opt := NewCandidate(cur.Pattern, rest)
				k := opt.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				options = append(options, opt)
				queue = append(queue, opt)
				if len(options) >= maxOpts {
					return options
				}
			}
		}
	}
	return options
}

// Expand applies Algorithm 6 using this model's workload and benefit
// function; see ExpandGraph.
func (m *CostModel) Expand(g *Graph, cfg ExpandConfig) *Graph {
	return ExpandGraph(g, m.byID, m.BValue, cfg)
}

// ExpandGraph implements Algorithm 6 (sharing conflict resolution): every
// vertex of g is expanded into its set of options, each option is weighted
// by weigh (typically CostModel.BValue; non-positive options are dropped
// per Definition 10), and conflicts among all options are recomputed.
func ExpandGraph(g *Graph, byID map[int]*query.Query, weigh func(Candidate) float64, cfg ExpandConfig) *Graph {
	maxVerts := cfg.MaxTotalVertices
	if maxVerts <= 0 {
		maxVerts = DefaultMaxVertices
	}
	var all []Candidate
	seen := make(map[string]bool)
	for vi := range g.Vertices {
		opts := []Candidate{g.Vertices[vi].Candidate}
		if len(all) < maxVerts {
			opts = ExpandOptions(g, vi, byID, cfg)
			if room := maxVerts - len(all); len(opts) > room {
				opts = opts[:room] // original candidate stays: it is opts[0]
			}
		}
		for _, opt := range opts {
			k := opt.Key()
			if !seen[k] {
				seen[k] = true
				all = append(all, opt)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key() < all[j].Key() })

	out := NewGraph()
	for _, c := range all {
		w := weigh(c)
		if w <= 0 {
			continue
		}
		vi := out.AddVertex(Vertex{Candidate: c, Weight: w})
		for ui := 0; ui < vi; ui++ {
			if conflict, causes := InConflict(byID, out.Vertices[vi].Candidate, out.Vertices[ui].Candidate); conflict {
				out.AddEdge(vi, ui, causes)
			}
		}
	}
	return out
}
