package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Vertex is a weighted Sharon-graph vertex: a beneficial sharing candidate
// and its benefit value (Definition 10).
type Vertex struct {
	Candidate
	// Weight is BValue(p, Qp) > 0.
	Weight float64
}

// Graph is the Sharon graph (Definition 10): vertices are beneficial
// sharing candidates, undirected edges are sharing conflicts. It is stored
// as an adjacency list for O(1) neighbor retrieval, as the paper's data
// structure section prescribes.
type Graph struct {
	Vertices []Vertex
	// adj[i] holds the indices of vertices in conflict with vertex i,
	// sorted ascending.
	adj [][]int
	// causes[edgeKey(i,j)] records the query IDs causing the conflict;
	// used by the §7.1 conflict-resolution extension.
	causes map[[2]int][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{causes: make(map[[2]int][]int)}
}

func edgeKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex(v Vertex) int {
	g.Vertices = append(g.Vertices, v)
	g.adj = append(g.adj, nil)
	return len(g.Vertices) - 1
}

// AddEdge records a conflict between vertices i and j caused by queries.
func (g *Graph) AddEdge(i, j int, causingQueries []int) {
	if i == j {
		return
	}
	k := edgeKey(i, j)
	if _, dup := g.causes[k]; dup {
		return
	}
	g.causes[k] = append([]int(nil), causingQueries...)
	g.adj[i] = insertSorted(g.adj[i], j)
	g.adj[j] = insertSorted(g.adj[j], i)
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether vertices i and j are in conflict.
func (g *Graph) HasEdge(i, j int) bool {
	_, ok := g.causes[edgeKey(i, j)]
	return ok
}

// EdgeCauses returns the query IDs causing the conflict between i and j.
func (g *Graph) EdgeCauses(i, j int) []int { return g.causes[edgeKey(i, j)] }

// Neighbors returns the vertices in conflict with i (shared slice; do not
// mutate).
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the number of conflicts of vertex i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.causes) }

// TotalWeight returns the sum of all vertex weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, v := range g.Vertices {
		sum += v.Weight
	}
	return sum
}

// LiveStates estimates the number of stored entries (vertices' query lists
// plus edges) for the optimizer memory metric.
func (g *Graph) LiveStates() int64 {
	var n int64
	for _, v := range g.Vertices {
		n += int64(len(v.Queries)) + 1
	}
	n += int64(len(g.causes))
	return n
}

// Format renders the graph for debugging and the sharon-opt tool.
func (g *Graph) Format(reg *event.Registry, w query.Workload) string {
	var b strings.Builder
	for i, v := range g.Vertices {
		fmt.Fprintf(&b, "v%d %s weight=%.4g conflicts=%v\n", i, v.Format(reg, w), v.Weight, g.adj[i])
	}
	return b.String()
}

// BuildGraph implements Algorithm 1: it consumes the sharable-pattern
// table (pattern -> queries), keeps candidates that are beneficial
// (BValue > 0) and shared by more than one query, and inserts a conflict
// edge for every overlapping pair.
func BuildGraph(m *CostModel, candidates []Candidate) *Graph {
	g := NewGraph()
	for _, c := range candidates {
		if len(c.Queries) < 2 {
			continue
		}
		bv := m.BValue(c)
		if bv <= 0 {
			continue // non-beneficial candidate pruning (§3.4)
		}
		vi := g.AddVertex(Vertex{Candidate: c, Weight: bv})
		for ui := 0; ui < vi; ui++ {
			if conflict, causes := InConflict(m.byID, g.Vertices[vi].Candidate, g.Vertices[ui].Candidate); conflict {
				g.AddEdge(vi, ui, causes)
			}
		}
	}
	return g
}

// BuildGraphWithWeights builds a graph from candidates with externally
// supplied weights (used by tests reproducing the paper's Figure 4, whose
// weights come from unpublished rate constants, and by the §7.1 expansion).
func BuildGraphWithWeights(w query.Workload, cands []Candidate, weights []float64) *Graph {
	if len(cands) != len(weights) {
		panic("core: candidate/weight length mismatch")
	}
	byID := make(map[int]*query.Query, len(w))
	for _, q := range w {
		byID[q.ID] = q
	}
	g := NewGraph()
	for i, c := range cands {
		if weights[i] <= 0 {
			continue
		}
		vi := g.AddVertex(Vertex{Candidate: c, Weight: weights[i]})
		for ui := 0; ui < vi; ui++ {
			if conflict, causes := InConflict(byID, g.Vertices[vi].Candidate, g.Vertices[ui].Candidate); conflict {
				g.AddEdge(vi, ui, causes)
			}
		}
	}
	return g
}

// GuaranteedWeight implements Eq. 10: GWMIN's guaranteed minimum
// independent-set weight, sum over vertices of weight/(degree+1).
func (g *Graph) GuaranteedWeight() float64 {
	var sum float64
	for i, v := range g.Vertices {
		sum += v.Weight / float64(g.Degree(i)+1)
	}
	return sum
}

// ScoreMax implements Definition 12: the maximal score of any plan
// containing vertex v — the summed weight of all vertices not in conflict
// with v (including v itself).
func (g *Graph) ScoreMax(v int) float64 {
	excluded := make(map[int]bool, g.Degree(v))
	for _, u := range g.adj[v] {
		excluded[u] = true
	}
	var sum float64
	for i, vert := range g.Vertices {
		if !excluded[i] {
			sum += vert.Weight
		}
	}
	return sum
}

// subgraph returns the induced subgraph on keep (vertex indices of g),
// preserving vertex order and edge causes.
func (g *Graph) subgraph(keep []int) *Graph {
	remap := make(map[int]int, len(keep))
	out := NewGraph()
	for _, oldIdx := range keep {
		remap[oldIdx] = out.AddVertex(g.Vertices[oldIdx])
	}
	for _, oldIdx := range keep {
		for _, u := range g.adj[oldIdx] {
			if nu, ok := remap[u]; ok {
				out.AddEdge(remap[oldIdx], nu, g.causes[edgeKey(oldIdx, u)])
			}
		}
	}
	return out
}
