package core

import (
	"sort"
	"time"
)

// foundPlan is a valid sharing plan during the lattice traversal: a sorted
// list of vertex indices and its score (Definition 8). Candidates are kept
// sorted within a plan so that plans sharing their first s-1 decisions are
// lexicographic neighbors, enabling the Apriori-style join of Algorithm 3.
type foundPlan struct {
	verts []int
	score float64
}

// PlanFinderStats reports the work done by the plan finder (used by the
// Figure 15 experiment).
type PlanFinderStats struct {
	// PlansConsidered counts the valid plans materialized (Example 10's
	// "10 valid plans").
	PlansConsidered int64
	// PeakLevelPlans is the maximum number of plans held at once — the
	// finder keeps only one level at a time (paper §6, data structures).
	PeakLevelPlans int64
	// Levels is the number of lattice levels visited.
	Levels int
	// TimedOut reports that the Deadline was hit and the best plan so far
	// was returned (the paper's fallback then runs GWMIN; the optimizer
	// front-end handles that).
	TimedOut bool
}

// nextLevel implements Algorithm 3: it joins pairs of valid size-s plans
// that agree on their first s-1 candidates and whose differing candidates
// are not in conflict (Lemma 6), yielding all valid size-s+1 plans
// (Lemma 7). parents must be lexicographically sorted; children are
// returned sorted.
//
// limit > 0 bounds the children generated; deadline (non-zero) bounds the
// wall clock. Either breach stops generation and reports truncated=true,
// which the plan finder translates into its GWMIN fallback (§6, case 1).
func nextLevel(g *Graph, parents []foundPlan, limit int, deadline time.Time) (children []foundPlan, truncated bool) {
	if len(parents) == 0 {
		return nil, false
	}
	s := len(parents[0].verts)
	for i := 0; i < len(parents); i++ {
		pi := parents[i].verts
		if !deadline.IsZero() && i%1024 == 0 && time.Now().After(deadline) {
			return children, true
		}
		for j := i + 1; j < len(parents); j++ {
			pj := parents[j].verts
			if !samePrefix(pi, pj, s-1) {
				// Lexicographic order makes equal-prefix plans
				// contiguous; once the prefix changes, no later plan
				// joins with parents[i].
				break
			}
			a, b := pi[s-1], pj[s-1] // a < b by lexicographic order
			if g.HasEdge(a, b) {
				continue // invalid branch pruned at its root (Lemma 4)
			}
			if limit > 0 && len(children) >= limit {
				return children, true
			}
			verts := make([]int, s+1)
			copy(verts, pi)
			verts[s] = b
			children = append(children, foundPlan{
				verts: verts,
				score: parents[i].score + g.Vertices[b].Weight,
			})
		}
	}
	return children, false
}

// DefaultMaxLevelPlans bounds how many plans one lattice level may hold
// before the finder falls back to GWMIN; it also bounds the finder's
// memory (the paper stores one level at a time, §6).
const DefaultMaxLevelPlans = 1 << 20

func samePrefix(a, b []int, n int) bool {
	for k := 0; k < n; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// FindOptimalPlan implements Algorithm 4: a breadth-first traversal of the
// valid plan lattice over the (reduced) Sharon graph g, returning the
// plan with maximal score together with the conflict-free candidates F
// collected during reduction. Only one lattice level is held at a time.
//
// deadline, when non-zero, bounds the search; on expiry the best valid
// plan found so far is returned with stats.TimedOut set (§6, extreme
// case 1).
func FindOptimalPlan(g *Graph, conflictFree []Vertex, deadline time.Time) (Plan, float64, PlanFinderStats) {
	var stats PlanFinderStats
	var opt []int
	var max float64

	// Level 1: every vertex is a valid plan on its own.
	level := make([]foundPlan, 0, g.NumVertices())
	for i := range g.Vertices {
		level = append(level, foundPlan{verts: []int{i}, score: g.Vertices[i].Weight})
	}
	sort.Slice(level, func(a, b int) bool { return lexLess(level[a].verts, level[b].verts) })

	for len(level) > 0 {
		stats.Levels++
		stats.PlansConsidered += int64(len(level))
		if int64(len(level)) > stats.PeakLevelPlans {
			stats.PeakLevelPlans = int64(len(level))
		}
		for _, p := range level {
			if p.score > max {
				max = p.score
				opt = p.verts
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			stats.TimedOut = true
			break
		}
		var truncated bool
		level, truncated = nextLevel(g, level, DefaultMaxLevelPlans, deadline)
		if truncated {
			// Scan the partial level for a better plan, then fall back.
			for _, p := range level {
				if p.score > max {
					max = p.score
					opt = p.verts
				}
			}
			stats.TimedOut = true
			break
		}
	}

	plan := g.PlanOf(opt)
	score := max
	for _, v := range conflictFree {
		plan = append(plan, v.Candidate)
		score += v.Weight
	}
	return plan, score, stats
}

func lexLess(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ExhaustivePlanSearch enumerates every subset of vertices, discarding
// invalid ones, and returns an optimal plan. It is the paper's exhaustive
// optimizer baseline (§8.3): exponential and only feasible for small
// workloads, used to validate the plan finder's optimality.
func ExhaustivePlanSearch(g *Graph) (Plan, float64, int64) {
	n := g.NumVertices()
	var best []int
	var bestScore float64
	var considered int64
	if n > 62 {
		panic("core: exhaustive search beyond 62 candidates is not representable")
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		considered++
		var verts []int
		var score float64
		valid := true
		for i := 0; i < n && valid; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, v := range verts {
				if g.HasEdge(v, i) {
					valid = false
					break
				}
			}
			if valid {
				verts = append(verts, i)
				score += g.Vertices[i].Weight
			}
		}
		if valid && score > bestScore {
			bestScore = score
			best = verts
		}
	}
	return g.PlanOf(best), bestScore, considered
}
