package core

import (
	"sort"

	"github.com/sharon-project/sharon/internal/query"
)

// SharablePattern pairs a pattern with the queries containing it.
type SharablePattern struct {
	Pattern query.Pattern
	Queries []int
}

// SharablePatterns implements the modified CCSpan algorithm (paper
// Appendix A, Algorithm 7). Unlike the original CCSpan, which mines only
// closed contiguous patterns, the modified algorithm enumerates *every*
// contiguous sub-pattern of length greater than one, because shorter
// sub-patterns can be shared by more queries; a pattern is "frequent" when
// it appears in more than one query.
//
// The result maps each sharable pattern p to the set Qp of queries whose
// pattern contains p contiguously. Complexity is O(n*l^2) over n queries
// of maximal pattern length l, as analyzed in the paper.
func SharablePatterns(w query.Workload) []SharablePattern {
	// H maintains all sub-patterns; S (the result) keeps those contained
	// in more than one query.
	h := make(map[string]*SharablePattern)
	for _, q := range w {
		l := q.Pattern.Length()
		seen := make(map[string]bool) // dedup within one query (§7.3 duplicates)
		for end := 2; end <= l; end++ {
			for start := 0; start <= end-2; start++ {
				p := q.Pattern.Sub(start, end)
				k := p.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				entry, ok := h[k]
				if !ok {
					entry = &SharablePattern{Pattern: p.Clone()}
					h[k] = entry
				}
				entry.Queries = append(entry.Queries, q.ID)
			}
		}
	}
	var out []SharablePattern
	for _, entry := range h {
		if len(entry.Queries) > 1 {
			sort.Ints(entry.Queries)
			out = append(out, *entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pattern.Key() < out[j].Pattern.Key() })
	return out
}
