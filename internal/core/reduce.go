package core

// ReduceResult is the outcome of the Sharon graph reduction (Algorithm 2).
type ReduceResult struct {
	// Reduced is the graph with conflict-ridden and conflict-free
	// candidates removed.
	Reduced *Graph
	// ConflictFree holds candidates with no conflicts: they are part of
	// every optimal plan (Definition 14) and are added to the final plan
	// directly, contributing their weight to its score.
	ConflictFree []Vertex
	// PrunedConflictRidden counts candidates removed because no plan
	// containing them can reach GWMIN's guaranteed weight (Definition 13).
	PrunedConflictRidden int
}

// Reduce implements Algorithm 2: repeatedly remove conflict-free
// candidates (into the plan set F) and conflict-ridden candidates
// (dropped) until the graph no longer shrinks.
//
// One refinement over the paper's pseudocode: the guaranteed weight is
// recomputed on the current subgraph at each pass rather than fixed once.
// After a conflict-free vertex f moves to F, every Scoremax drops by
// weight(f) while a fixed bound would not, so a fixed bound could prune
// vertices that belong to the optimum. Recomputing keeps the two sides of
// Definition 13 referring to the same graph, preserving optimality
// (Lemma 2) while pruning at least as much on conflict-ridden removals.
func Reduce(g *Graph) ReduceResult {
	res := ReduceResult{}
	cur := g
	for {
		min := cur.GuaranteedWeight()
		var keep []int
		changed := false
		for i := range cur.Vertices {
			switch {
			case cur.Degree(i) == 0:
				// Conflict-free: goes straight into the optimal plan.
				res.ConflictFree = append(res.ConflictFree, cur.Vertices[i])
				changed = true
			case cur.ScoreMax(i) < min:
				// Conflict-ridden: even the best plan containing it
				// scores below what GWMIN already guarantees.
				res.PrunedConflictRidden++
				changed = true
			default:
				keep = append(keep, i)
			}
		}
		if !changed {
			res.Reduced = cur
			return res
		}
		cur = cur.subgraph(keep)
	}
}
