package core

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Rates maps each event type to its stream rate (events per second); the
// input of the optimizer's cost model (paper §3.2). Rates are measured
// from a stream sample (event.Stream.Rates) or supplied by the workload
// generator.
type Rates map[event.Type]float64

// Rate returns the rate of a single type (0 for unseen types).
func (r Rates) Rate(t event.Type) float64 { return r[t] }

// PatternRate implements Eq. 1: the rate of events matched by a pattern is
// the sum of the rates of its event types.
func (r Rates) PatternRate(p query.Pattern) float64 {
	var sum float64
	for _, t := range p {
		sum += r[t]
	}
	return sum
}

// CostModel prices the non-shared and shared methods (paper §3.2–3.4).
type CostModel struct {
	Workload query.Workload
	Rates    Rates
	byID     map[int]*query.Query
}

// NewCostModel builds a cost model over a workload and its type rates.
func NewCostModel(w query.Workload, rates Rates) *CostModel {
	byID := make(map[int]*query.Query, len(w))
	for _, q := range w {
		byID[q.ID] = q
	}
	return &CostModel{Workload: w, Rates: rates, byID: byID}
}

// queryByID panics on unknown IDs: candidates are always derived from the
// same workload, so a miss is a programming error.
func (m *CostModel) queryByID(id int) *query.Query {
	q, ok := m.byID[id]
	if !ok {
		panic(fmt.Sprintf("core: unknown query id %d", id))
	}
	return q
}

// multiplicity returns the factor k of the §7.3 extension: if an event
// type occurs k times in a pattern, each of its events updates k prefix
// aggregates, scaling both methods' costs by k. Under the core assumption
// (each type at most once) it is 1.
func multiplicity(p query.Pattern) float64 {
	counts := make(map[event.Type]int, len(p))
	max := 1
	for _, t := range p {
		counts[t]++
		if counts[t] > max {
			max = counts[t]
		}
	}
	return float64(max)
}

// NonSharedQuery implements Eq. 2: the cost of processing query qi with
// the non-shared method is Rate(E1) * Rate(Pi) — each matched event
// updates one aggregate per non-expired START event.
func (m *CostModel) NonSharedQuery(qi *query.Query) float64 {
	if qi.Pattern.Length() == 0 {
		return 0
	}
	return m.Rates.Rate(qi.Pattern[0]) * m.Rates.PatternRate(qi.Pattern) * multiplicity(qi.Pattern)
}

// NonShared implements Eq. 3: the summed non-shared cost of all queries in
// the candidate.
func (m *CostModel) NonShared(c Candidate) float64 {
	var sum float64
	for _, id := range c.Queries {
		sum += m.NonSharedQuery(m.queryByID(id))
	}
	return sum
}

// Decompose splits qi's pattern around the first occurrence of p
// (Definition 4): prefix_i, p, suffix_i. ok is false when p does not
// occur in qi.
func Decompose(qi *query.Query, p query.Pattern) (prefix, suffix query.Pattern, ok bool) {
	at := qi.Pattern.IndexOf(p)
	if at < 0 {
		return nil, nil, false
	}
	return qi.Pattern.Sub(0, at), qi.Pattern.Sub(at+p.Length(), qi.Pattern.Length()), true
}

// CompQuery implements Eq. 4: the count-computation cost of query qi under
// sharing of p — the non-shared cost of its prefix and suffix only.
func (m *CostModel) CompQuery(qi *query.Query, p query.Pattern) float64 {
	prefix, suffix, ok := Decompose(qi, p)
	if !ok {
		return m.NonSharedQuery(qi)
	}
	var cost float64
	if len(prefix) > 0 {
		cost += m.Rates.Rate(prefix[0]) * m.Rates.PatternRate(prefix)
	}
	if len(suffix) > 0 {
		cost += m.Rates.Rate(suffix[0]) * m.Rates.PatternRate(suffix)
	}
	return cost * multiplicity(qi.Pattern)
}

// CombQuery implements Eq. 5: the count-combination cost of query qi —
// the product of the numbers of aggregates combined: prefix STARTs,
// shared-pattern STARTs, and suffix STARTs.
func (m *CostModel) CombQuery(qi *query.Query, p query.Pattern) float64 {
	prefix, suffix, ok := Decompose(qi, p)
	if !ok {
		return 0
	}
	cost := m.Rates.Rate(p[0])
	if len(prefix) > 0 {
		cost *= m.Rates.Rate(prefix[0])
	}
	if len(suffix) > 0 {
		cost *= m.Rates.Rate(suffix[0])
	}
	return cost
}

// SharedQuery implements Eq. 6: per-query cost under the shared method.
func (m *CostModel) SharedQuery(qi *query.Query, p query.Pattern) float64 {
	return m.CompQuery(qi, p) + m.CombQuery(qi, p)
}

// Shared implements Eq. 7: the candidate's total shared cost — the shared
// pattern is computed once (Rate(Em) * Rate(p)) plus each query's
// computation and combination costs.
func (m *CostModel) Shared(c Candidate) float64 {
	cost := m.Rates.Rate(c.Pattern[0]) * m.Rates.PatternRate(c.Pattern) * multiplicity(c.Pattern)
	for _, id := range c.Queries {
		cost += m.SharedQuery(m.queryByID(id), c.Pattern)
	}
	return cost
}

// BValue implements Eq. 8: the benefit of a sharing candidate is the
// non-shared cost minus the shared cost. Candidates with BValue <= 0 are
// non-beneficial and pruned (§3.4).
func (m *CostModel) BValue(c Candidate) float64 {
	return m.NonShared(c) - m.Shared(c)
}
