// Package core implements the paper's primary contribution: the Sharon
// optimizer. It detects sharable patterns (modified CCSpan, Appendix A),
// prices sharing candidates with the benefit model (§3), encodes candidates
// and conflicts into the Sharon graph (§4), prunes the graph using GWMIN's
// guaranteed weight (§5, Appendix B), searches the valid plan space with
// the Apriori-style plan finder (§6), and optionally expands candidates to
// resolve conflicts (§7.1).
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Candidate is a sharing candidate (p, Qp): a sharable pattern p together
// with the queries that share its aggregation (paper Definition 3).
type Candidate struct {
	// Pattern is the shared pattern p; p.Length() > 1.
	Pattern query.Pattern
	// Queries holds the IDs of the sharing queries Qp, sorted ascending;
	// |Qp| > 1.
	Queries []int
}

// NewCandidate builds a candidate with a defensively copied, sorted,
// deduplicated query list.
func NewCandidate(p query.Pattern, queries []int) Candidate {
	qs := append([]int(nil), queries...)
	sort.Ints(qs)
	qs = dedupInts(qs)
	return Candidate{Pattern: p.Clone(), Queries: qs}
}

func dedupInts(qs []int) []int {
	out := qs[:0]
	for i, v := range qs {
		if i == 0 || v != qs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Key returns a unique map key for the candidate (pattern + query set).
func (c Candidate) Key() string {
	var b strings.Builder
	b.WriteString(c.Pattern.Key())
	b.WriteByte('|')
	for i, q := range c.Queries {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", q)
	}
	return b.String()
}

// PatternKey returns the map key of the candidate's pattern alone.
func (c Candidate) PatternKey() string { return c.Pattern.Key() }

// HasQuery reports whether query id q shares this candidate.
func (c Candidate) HasQuery(q int) bool {
	i := sort.SearchInts(c.Queries, q)
	return i < len(c.Queries) && c.Queries[i] == q
}

// CommonQueries returns the IDs shared by both candidates, sorted.
func (c Candidate) CommonQueries(d Candidate) []int {
	var out []int
	i, j := 0, 0
	for i < len(c.Queries) && j < len(d.Queries) {
		switch {
		case c.Queries[i] < d.Queries[j]:
			i++
		case c.Queries[i] > d.Queries[j]:
			j++
		default:
			out = append(out, c.Queries[i])
			i++
			j++
		}
	}
	return out
}

// Format renders the candidate like the paper: "(p, {q1, q2})".
func (c Candidate) Format(reg *event.Registry, w query.Workload) string {
	names := make([]string, len(c.Queries))
	byID := make(map[int]*query.Query, len(w))
	for _, q := range w {
		byID[q.ID] = q
	}
	for i, id := range c.Queries {
		if q, ok := byID[id]; ok {
			names[i] = q.Label()
		} else {
			names[i] = fmt.Sprintf("q%d", id)
		}
	}
	return fmt.Sprintf("(%s, {%s})", c.Pattern.Format(reg), strings.Join(names, ", "))
}

// Plan is a sharing plan: a set of sharing candidates (Definition 7).
type Plan []Candidate

// Clone returns a deep-enough copy of the plan.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	copy(out, p)
	return out
}

// Equal reports whether two plans contain the same candidates,
// order-insensitively (candidates compare by Key). The cluster adopt
// path uses it to refuse grafts built under a different plan than the
// receiving worker runs.
func (p Plan) Equal(q Plan) bool {
	if len(p) != len(q) {
		return false
	}
	keys := make(map[string]int, len(p))
	for _, c := range p {
		keys[c.Key()]++
	}
	for _, c := range q {
		keys[c.Key()]--
		if keys[c.Key()] < 0 {
			return false
		}
	}
	return true
}

// QueriesSharing returns, for query id q, the candidates in the plan that
// q participates in.
func (p Plan) QueriesSharing(q int) []Candidate {
	var out []Candidate
	for _, c := range p {
		if c.HasQuery(q) {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks the plan against a workload: every candidate pattern
// must occur in each of its queries, and the candidates assigned to one
// query must occupy non-overlapping pattern segments (Definitions 6–7).
func (p Plan) Validate(w query.Workload) error {
	byID := make(map[int]*query.Query, len(w))
	for _, q := range w {
		byID[q.ID] = q
	}
	type span struct {
		lo, hi int
		c      Candidate
	}
	perQuery := make(map[int][]span)
	for _, c := range p {
		if c.Pattern.Length() < 2 {
			return fmt.Errorf("plan: pattern %v is not sharable (length %d)", c.Pattern, c.Pattern.Length())
		}
		if len(c.Queries) < 2 {
			return fmt.Errorf("plan: candidate for pattern %v has %d queries; sharing needs at least 2", c.Pattern, len(c.Queries))
		}
		for _, id := range c.Queries {
			q, ok := byID[id]
			if !ok {
				return fmt.Errorf("plan: candidate references unknown query id %d", id)
			}
			at := q.Pattern.IndexOf(c.Pattern)
			if at < 0 {
				return fmt.Errorf("plan: query %s does not contain pattern %v", q.Label(), c.Pattern)
			}
			perQuery[id] = append(perQuery[id], span{at, at + c.Pattern.Length(), c})
		}
	}
	for id, spans := range perQuery {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			if spans[i].lo < spans[i-1].hi {
				return fmt.Errorf("plan: conflicting candidates for query q%d: segments [%d,%d) and [%d,%d) overlap",
					id, spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
			}
		}
	}
	return nil
}

// Format renders the plan like the paper's examples.
func (p Plan) Format(reg *event.Registry, w query.Workload) string {
	if len(p) == 0 {
		return "{}"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.Format(reg, w)
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// FindCandidates runs the modified CCSpan detection (Appendix A) and
// returns all sharing candidates (p, Qp) of the workload: every contiguous
// sub-pattern of length > 1 appearing in more than one query, with the
// full set of queries containing it. Candidates are returned in a
// deterministic order (by pattern key).
func FindCandidates(w query.Workload) []Candidate {
	table := SharablePatterns(w)
	keys := make([]string, 0, len(table))
	byKey := make(map[string]Candidate, len(table))
	for _, sc := range table {
		c := NewCandidate(sc.Pattern, sc.Queries)
		k := c.Key()
		keys = append(keys, k)
		byKey[k] = c
	}
	sort.Strings(keys)
	out := make([]Candidate, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}
