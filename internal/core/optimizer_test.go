package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// randomGraph builds a random conflict graph over synthetic candidates.
// Patterns are constructed so that requested conflicts exist structurally:
// conflicting candidates get overlapping patterns within a shared query.
func randomGraph(rng *rand.Rand, nVerts int) *Graph {
	g := NewGraph()
	for i := 0; i < nVerts; i++ {
		// Pattern identity only matters for Key uniqueness here; use
		// synthetic type ids.
		p := query.Pattern{event.Type(2*i + 1), event.Type(2*i + 2)}
		g.AddVertex(Vertex{
			Candidate: NewCandidate(p, []int{rng.Intn(5), 5 + rng.Intn(5)}),
			Weight:    1 + float64(rng.Intn(30)),
		})
	}
	for i := 0; i < nVerts; i++ {
		for j := i + 1; j < nVerts; j++ {
			if rng.Float64() < 0.35 {
				g.AddEdge(i, j, []int{0})
			}
		}
	}
	return g
}

// TestPlanFinderMatchesExhaustiveRandom is the optimizer's core property:
// on random graphs, reduction + plan finder returns the same weight as
// exhaustive subset search.
func TestPlanFinderMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		g := randomGraph(rng, 2+rng.Intn(11))
		_, exScore, _ := ExhaustivePlanSearch(g)

		red := Reduce(g)
		_, score, _ := FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
		if score != exScore {
			t.Fatalf("iter %d: plan finder score %v != exhaustive %v\ngraph: %d verts %d edges",
				it, score, exScore, g.NumVertices(), g.NumEdges())
		}

		// Without reduction the finder must agree too.
		_, score2, _ := FindOptimalPlan(g, nil, time.Time{})
		if score2 != exScore {
			t.Fatalf("iter %d: unreduced finder score %v != exhaustive %v", it, score2, exScore)
		}
	}
}

// TestGWMINBoundRandom: GWMIN always returns an independent set whose
// weight meets the Eq. 10 guarantee and never exceeds the optimum.
func TestGWMINBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 300; it++ {
		g := randomGraph(rng, 2+rng.Intn(12))
		set := GWMIN(g)
		if !g.IsIndependentSet(set) {
			t.Fatalf("iter %d: GWMIN set %v not independent", it, set)
		}
		w := g.SetWeight(set)
		if bound := g.GuaranteedWeight(); w < bound-1e-9 {
			t.Fatalf("iter %d: GWMIN weight %v below guarantee %v", it, w, bound)
		}
		_, opt, _ := ExhaustivePlanSearch(g)
		if w > opt+1e-9 {
			t.Fatalf("iter %d: GWMIN weight %v above optimum %v", it, w, opt)
		}
	}
}

// TestReducePreservesOptimum: reduction never changes the best achievable
// score, and conflict-free candidates always belong to the optimum.
func TestReducePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 300; it++ {
		g := randomGraph(rng, 2+rng.Intn(11))
		_, before, _ := ExhaustivePlanSearch(g)
		red := Reduce(g)
		_, after, _ := FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
		if before != after {
			t.Fatalf("iter %d: optimum changed by reduction: %v -> %v", it, before, after)
		}
	}
}

// TestPlanFinderDeadline: an already-expired deadline still yields a valid
// plan (backed by the GWMIN fallback at the optimizer level).
func TestPlanFinderDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 12)
	_, _, stats := FindOptimalPlan(g, nil, time.Now().Add(-time.Second))
	if !stats.TimedOut {
		t.Error("expired deadline not reported")
	}
}

func TestLevelGenerationApriori(t *testing.T) {
	// Triangle-free path graph v0-v1-v2: valid plans are {v0},{v1},{v2},
	// {v0,v2}. Level 2 from singles must contain only {v0,v2}.
	g := NewGraph()
	for i := 0; i < 3; i++ {
		p := query.Pattern{event.Type(2*i + 1), event.Type(2*i + 2)}
		g.AddVertex(Vertex{Candidate: NewCandidate(p, []int{0, 1}), Weight: float64(i + 1)})
	}
	g.AddEdge(0, 1, []int{0})
	g.AddEdge(1, 2, []int{0})
	level1 := []foundPlan{{verts: []int{0}, score: 1}, {verts: []int{1}, score: 2}, {verts: []int{2}, score: 3}}
	level2, trunc := nextLevel(g, level1, 0, time.Time{})
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(level2) != 1 || level2[0].verts[0] != 0 || level2[0].verts[1] != 2 {
		t.Fatalf("level 2 = %+v, want [{0 2}]", level2)
	}
	if level2[0].score != 4 {
		t.Errorf("score = %v, want 4", level2[0].score)
	}
	if l3, _ := nextLevel(g, level2, 0, time.Time{}); len(l3) != 0 {
		t.Error("level 3 should be empty")
	}
}

func TestLevelGenerationLimit(t *testing.T) {
	// A 6-vertex edgeless graph has 15 size-2 plans; a limit of 4 must
	// truncate.
	g := NewGraph()
	for i := 0; i < 6; i++ {
		p := query.Pattern{event.Type(2*i + 1), event.Type(2*i + 2)}
		g.AddVertex(Vertex{Candidate: NewCandidate(p, []int{0, 1}), Weight: 1})
	}
	var level1 []foundPlan
	for i := 0; i < 6; i++ {
		level1 = append(level1, foundPlan{verts: []int{i}, score: 1})
	}
	level2, trunc := nextLevel(g, level1, 4, time.Time{})
	if !trunc || len(level2) != 4 {
		t.Fatalf("limit ignored: %d children, truncated=%v", len(level2), trunc)
	}
}

// TestOptimizeStrategies runs all four front-ends over a real workload and
// cost model.
func TestOptimizeStrategies(t *testing.T) {
	reg := event.NewRegistry()
	w := query.Workload{
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10s SLIDE 2s", reg),
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 10s SLIDE 2s", reg),
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(E, A, B) WITHIN 10s SLIDE 2s", reg),
	}
	w.Renumber()
	rates := Rates{}
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		rates[reg.Lookup(name)] = 100
	}
	var scores = map[Strategy]float64{}
	for _, s := range []Strategy{StrategySharon, StrategyGreedy, StrategyExhaustive, StrategyNone} {
		res, err := Optimize(w, rates, OptimizerOptions{Strategy: s, Expand: s != StrategyGreedy})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := res.Plan.Validate(w); err != nil {
			t.Errorf("%v: invalid plan: %v", s, err)
		}
		scores[s] = res.Score
		if s == StrategyNone && len(res.Plan) != 0 {
			t.Errorf("NoShare produced a plan: %v", res.Plan)
		}
		if s == StrategySharon && len(res.Phases) != 4 {
			t.Errorf("Sharon phases = %v, want 4", res.Phases)
		}
		if s == StrategyGreedy && len(res.Phases) != 2 {
			t.Errorf("Greedy phases = %v, want 2", res.Phases)
		}
	}
	if scores[StrategySharon] < scores[StrategyGreedy] {
		t.Errorf("Sharon score %v below greedy %v", scores[StrategySharon], scores[StrategyGreedy])
	}
	if scores[StrategySharon] != scores[StrategyExhaustive] {
		t.Errorf("Sharon %v != exhaustive %v", scores[StrategySharon], scores[StrategyExhaustive])
	}
	if scores[StrategySharon] <= 0 {
		t.Errorf("Sharon found no beneficial sharing: %v", scores[StrategySharon])
	}
}

// TestOptimizeBudgetFallback: with a zero-ish budget the Sharon strategy
// must still return a valid plan at least as good as GWMIN's.
func TestOptimizeBudgetFallback(t *testing.T) {
	reg := event.NewRegistry()
	var w query.Workload
	// Many overlapping queries to make the search non-trivial.
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for i := 0; i+2 < len(names); i++ {
		for j := 0; j < 2; j++ {
			w = append(w, query.MustParse(
				"RETURN COUNT(*) PATTERN SEQ("+names[i]+", "+names[i+1]+", "+names[i+2]+") WITHIN 10s SLIDE 2s", reg))
		}
	}
	w.Renumber()
	rates := Rates{}
	for _, n := range names {
		rates[reg.Lookup(n)] = 50
	}
	res, err := Optimize(w, rates, OptimizerOptions{Strategy: StrategySharon, Expand: true, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(w); err != nil {
		t.Errorf("fallback plan invalid: %v", err)
	}
	gres, err := Optimize(w, rates, OptimizerOptions{Strategy: StrategyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < gres.Score {
		t.Errorf("budgeted Sharon score %v below greedy %v", res.Score, gres.Score)
	}
}
