package core

import (
	"strings"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

func mkCand(firstType event.Type, qs ...int) Candidate {
	return NewCandidate(query.Pattern{firstType, firstType + 1}, qs)
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	v0 := g.AddVertex(Vertex{Candidate: mkCand(1, 0, 1), Weight: 5})
	v1 := g.AddVertex(Vertex{Candidate: mkCand(3, 1, 2), Weight: 7})
	v2 := g.AddVertex(Vertex{Candidate: mkCand(5, 2, 3), Weight: 2})
	g.AddEdge(v0, v1, []int{1})
	g.AddEdge(v1, v2, []int{2})

	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph = %dv/%de", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(v0, v1) || !g.HasEdge(v1, v0) {
		t.Error("undirected edge missing")
	}
	if g.HasEdge(v0, v2) {
		t.Error("phantom edge")
	}
	if d := g.Degree(v1); d != 2 {
		t.Errorf("degree(v1) = %d", d)
	}
	if got := g.EdgeCauses(v0, v1); len(got) != 1 || got[0] != 1 {
		t.Errorf("causes = %v", got)
	}
	if got := g.TotalWeight(); got != 14 {
		t.Errorf("total weight = %v", got)
	}
	// Duplicate and self edges are ignored.
	g.AddEdge(v0, v1, []int{9})
	g.AddEdge(v0, v0, []int{9})
	if g.NumEdges() != 2 {
		t.Errorf("edges after dup/self = %d", g.NumEdges())
	}
	if got := g.EdgeCauses(v0, v1); got[0] != 1 {
		t.Errorf("duplicate AddEdge overwrote causes: %v", got)
	}
}

func TestGraphSubgraph(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.AddVertex(Vertex{Candidate: mkCand(event.Type(2*i+1), 0, 1), Weight: float64(i + 1)})
	}
	g.AddEdge(0, 1, []int{0})
	g.AddEdge(1, 2, []int{0})
	g.AddEdge(2, 3, []int{0})
	sub := g.subgraph([]int{0, 2, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	// Only the 2-3 edge survives (1 was dropped).
	if sub.NumEdges() != 1 {
		t.Errorf("sub edges = %d", sub.NumEdges())
	}
	if !sub.HasEdge(1, 2) { // remapped indices: 2->1, 3->2
		t.Error("remapped edge missing")
	}
	if sub.Vertices[1].Weight != 3 {
		t.Errorf("weights not preserved: %+v", sub.Vertices)
	}
}

func TestGraphFormatAndLiveStates(t *testing.T) {
	reg := event.NewRegistry()
	a, b := reg.Intern("A"), reg.Intern("B")
	w := query.Workload{{ID: 0, Name: "q1", Pattern: query.Pattern{a, b},
		Window: query.Window{Length: 10, Slide: 5}}}
	g := NewGraph()
	g.AddVertex(Vertex{Candidate: NewCandidate(query.Pattern{a, b}, []int{0, 1}), Weight: 4})
	out := g.Format(reg, w)
	if !strings.Contains(out, "(A, B)") || !strings.Contains(out, "weight=4") {
		t.Errorf("Format = %q", out)
	}
	if g.LiveStates() <= 0 {
		t.Error("LiveStates = 0")
	}
}

func TestGWMINEmptyGraph(t *testing.T) {
	if got := GWMIN(NewGraph()); len(got) != 0 {
		t.Errorf("GWMIN(empty) = %v", got)
	}
}

func TestGWMINSingleVertex(t *testing.T) {
	g := NewGraph()
	g.AddVertex(Vertex{Candidate: mkCand(1, 0, 1), Weight: 3})
	set := GWMIN(g)
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("GWMIN = %v", set)
	}
}

// TestGWMINStarGraph: a center whose weight-per-degree ratio loses to the
// leaves — GWMIN must pick all leaves.
func TestGWMINStarGraph(t *testing.T) {
	g := NewGraph()
	center := g.AddVertex(Vertex{Candidate: mkCand(1, 0, 1), Weight: 10})
	for i := 0; i < 4; i++ {
		leaf := g.AddVertex(Vertex{Candidate: mkCand(event.Type(10+2*i), 0, 1), Weight: 6})
		g.AddEdge(center, leaf, []int{0})
	}
	set := GWMIN(g)
	if len(set) != 4 {
		t.Fatalf("GWMIN star = %v, want the 4 leaves", set)
	}
	if g.SetWeight(set) != 24 {
		t.Errorf("weight = %v", g.SetWeight(set))
	}
}

func TestReduceEmptyAndConflictFreeOnly(t *testing.T) {
	res := Reduce(NewGraph())
	if res.Reduced.NumVertices() != 0 || len(res.ConflictFree) != 0 {
		t.Errorf("Reduce(empty) = %+v", res)
	}
	g := NewGraph()
	g.AddVertex(Vertex{Candidate: mkCand(1, 0, 1), Weight: 1})
	g.AddVertex(Vertex{Candidate: mkCand(3, 2, 3), Weight: 2})
	res = Reduce(g)
	if len(res.ConflictFree) != 2 || res.Reduced.NumVertices() != 0 {
		t.Errorf("edgeless graph should be fully conflict-free: %+v", res)
	}
}

// TestReduceCascade: removing a conflict-ridden vertex can make its
// neighbor conflict-free in a later pass.
func TestReduceCascade(t *testing.T) {
	g := NewGraph()
	// big is so heavy that low's Scoremax (low+mid) is below the bound.
	big := g.AddVertex(Vertex{Candidate: mkCand(1, 0, 1), Weight: 100})
	low := g.AddVertex(Vertex{Candidate: mkCand(3, 0, 1), Weight: 1})
	mid := g.AddVertex(Vertex{Candidate: mkCand(5, 2, 3), Weight: 50})
	g.AddEdge(big, low, []int{0})
	_ = mid
	res := Reduce(g)
	// Pass 1: mid is conflict-free; bound = 100/2 + 1/2 + 50 = 100.5;
	// Scoremax(low) = 1 + 50 = 51 < 100.5 -> pruned. Pass 2: big becomes
	// conflict-free.
	if len(res.ConflictFree) != 2 {
		t.Fatalf("conflict-free = %d, want 2 (mid, then big)", len(res.ConflictFree))
	}
	if res.PrunedConflictRidden != 1 {
		t.Errorf("pruned = %d, want 1 (low)", res.PrunedConflictRidden)
	}
	if res.Reduced.NumVertices() != 0 {
		t.Errorf("residual graph %d vertices", res.Reduced.NumVertices())
	}
}

func TestInsertSorted(t *testing.T) {
	var s []int
	for _, v := range []int{5, 1, 3, 3, 2} {
		s = insertSorted(s, v)
	}
	want := []int{1, 2, 3, 5}
	if len(s) != len(want) {
		t.Fatalf("insertSorted = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", s, want)
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	reg := event.NewRegistry()
	a, b, c := reg.Intern("A"), reg.Intern("B"), reg.Intern("C")
	w := query.Workload{
		{ID: 0, Pattern: query.Pattern{a, b, c}, Window: query.Window{Length: 10, Slide: 5}},
		{ID: 1, Pattern: query.Pattern{a, b}, Window: query.Window{Length: 10, Slide: 5}},
	}
	plan := Plan{NewCandidate(query.Pattern{a, b}, []int{0, 1})}
	if err := plan.Validate(w); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if got := plan.QueriesSharing(0); len(got) != 1 {
		t.Errorf("QueriesSharing(0) = %v", got)
	}
	if got := plan.QueriesSharing(9); len(got) != 0 {
		t.Errorf("QueriesSharing(9) = %v", got)
	}
	clone := plan.Clone()
	clone[0] = NewCandidate(query.Pattern{b, c}, []int{0, 1})
	if plan[0].Pattern.Equal(clone[0].Pattern) {
		t.Error("Clone aliases plan")
	}
	if got := (Plan{}).Format(reg, w); got != "{}" {
		t.Errorf("empty plan Format = %q", got)
	}

	// Invalid plans.
	bad := []Plan{
		{NewCandidate(query.Pattern{a}, []int{0, 1})},                                                    // length 1
		{NewCandidate(query.Pattern{a, b}, []int{0})},                                                    // single query
		{NewCandidate(query.Pattern{a, b}, []int{0, 7})},                                                 // unknown id
		{NewCandidate(query.Pattern{b, c}, []int{0, 1})},                                                 // not in q1
		{NewCandidate(query.Pattern{a, b}, []int{0, 1}), NewCandidate(query.Pattern{b, c}, []int{0, 1})}, // overlap
	}
	for i, p := range bad {
		if err := p.Validate(w); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestExhaustivePanicsBeyondLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized exhaustive search")
		}
	}()
	g := NewGraph()
	for i := 0; i < 63; i++ {
		g.AddVertex(Vertex{Candidate: mkCand(event.Type(2*i+1), 0, 1), Weight: 1})
	}
	ExhaustivePlanSearch(g)
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategySharon:     "Sharon",
		StrategyGreedy:     "Greedy",
		StrategyExhaustive: "Exhaustive",
		StrategyNone:       "NoShare",
		Strategy(99):       "Strategy(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
