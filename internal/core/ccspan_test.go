package core

import (
	"testing"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

func ccWorkload(reg *event.Registry, pats ...string) query.Workload {
	var w query.Workload
	for i, s := range pats {
		p := make(query.Pattern, len(s))
		for j := range s {
			p[j] = reg.Intern(string(s[j]))
		}
		w = append(w, &query.Query{ID: i, Pattern: p,
			Window: query.Window{Length: 100, Slide: 10}})
	}
	return w
}

func TestSharablePatternsBasics(t *testing.T) {
	reg := event.NewRegistry()
	w := ccWorkload(reg, "ABC", "ABD")
	got := SharablePatterns(w)
	// Only (A,B) is shared; (B,C),(A,B,C),(B,D),(A,B,D) are single-query.
	if len(got) != 1 {
		t.Fatalf("sharable = %v, want 1", got)
	}
	if got[0].Pattern.Length() != 2 {
		t.Errorf("pattern = %v", got[0].Pattern)
	}
	if len(got[0].Queries) != 2 || got[0].Queries[0] != 0 || got[0].Queries[1] != 1 {
		t.Errorf("queries = %v", got[0].Queries)
	}
}

func TestSharablePatternsNoLengthOne(t *testing.T) {
	reg := event.NewRegistry()
	w := ccWorkload(reg, "AB", "AC")
	// A is common but length-1 patterns are not sharable (Definition 3).
	for _, sp := range SharablePatterns(w) {
		if sp.Pattern.Length() < 2 {
			t.Errorf("length-1 pattern reported sharable: %v", sp)
		}
	}
}

func TestSharablePatternsIdenticalQueries(t *testing.T) {
	reg := event.NewRegistry()
	w := ccWorkload(reg, "ABCD", "ABCD", "ABCD")
	got := SharablePatterns(w)
	// Sub-patterns of length 2..4: AB BC CD ABC BCD ABCD = 6, each in all
	// three queries.
	if len(got) != 6 {
		t.Fatalf("sharable = %d, want 6", len(got))
	}
	for _, sp := range got {
		if len(sp.Queries) != 3 {
			t.Errorf("pattern %v queries = %v", sp.Pattern, sp.Queries)
		}
	}
}

func TestSharablePatternsDuplicateTypesInQuery(t *testing.T) {
	reg := event.NewRegistry()
	// (A,B,A,B): sub-pattern (A,B) occurs twice in q0 but q0 must be
	// listed once.
	w := ccWorkload(reg, "ABAB", "AB")
	for _, sp := range SharablePatterns(w) {
		seen := map[int]bool{}
		for _, q := range sp.Queries {
			if seen[q] {
				t.Fatalf("pattern %v lists query %d twice", sp.Pattern, q)
			}
			seen[q] = true
		}
	}
}

func TestSharablePatternsEmptyWorkload(t *testing.T) {
	if got := SharablePatterns(nil); len(got) != 0 {
		t.Errorf("sharable(empty) = %v", got)
	}
}

func TestFindCandidatesDeterministicOrder(t *testing.T) {
	reg := event.NewRegistry()
	w := ccWorkload(reg, "ABC", "ABC", "BCD", "BCD")
	a := FindCandidates(w)
	b := FindCandidates(w)
	if len(a) != len(b) {
		t.Fatal("non-deterministic candidate count")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExpandOptionsRespectsCap(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	opts := ExpandOptions(g, 0, f.byID, ExpandConfig{MaxOptionsPerCandidate: 3})
	if len(opts) > 3 {
		t.Errorf("cap ignored: %d options", len(opts))
	}
	if !opts[0].Pattern.Equal(f.patterns[0]) {
		t.Error("original candidate not first")
	}
}

func TestExpandGraphVertexCap(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	weigh := func(c Candidate) float64 { return float64(len(c.Queries)) }
	small := ExpandGraph(g, f.byID, weigh, ExpandConfig{MaxOptionsPerCandidate: 64, MaxTotalVertices: 8})
	// At most the cap plus one original vertex per remaining candidate.
	if small.NumVertices() > 8+g.NumVertices() {
		t.Errorf("vertex cap ineffective: %d", small.NumVertices())
	}
}

func TestExpandOptionsConflictFreeVertex(t *testing.T) {
	f := newPaperFixture()
	g := f.graph()
	// p7 has no conflicts: its option set is just itself.
	opts := ExpandOptions(g, 6, f.byID, ExpandConfig{})
	if len(opts) != 1 {
		t.Errorf("conflict-free candidate expanded to %d options", len(opts))
	}
}

func TestPatternsOverlapInCases(t *testing.T) {
	reg := event.NewRegistry()
	mk := func(s string) query.Pattern {
		p := make(query.Pattern, len(s))
		for i := range s {
			p[i] = reg.Intern(string(s[i]))
		}
		return p
	}
	q := &query.Query{ID: 0, Pattern: mk("ABCDE"), Window: query.Window{Length: 10, Slide: 5}}
	tests := []struct {
		a, b string
		want bool
	}{
		{"AB", "BC", true},   // suffix/prefix overlap
		{"AB", "CD", false},  // disjoint
		{"ABC", "BC", true},  // containment
		{"BCD", "CD", true},  // containment
		{"AB", "DE", false},  // disjoint, far apart
		{"ABC", "CDE", true}, // single shared position
		{"AB", "AB", true},   // identical
	}
	for _, tt := range tests {
		if got := PatternsOverlapIn(q, mk(tt.a), mk(tt.b)); got != tt.want {
			t.Errorf("overlap(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
	// Patterns absent from the query never overlap in it.
	if PatternsOverlapIn(q, mk("XY"), mk("YZ")) {
		t.Error("absent patterns reported overlapping")
	}
}

func TestInConflictRequiresCommonQuery(t *testing.T) {
	f := newPaperFixture()
	// p4 (q2,q4) and p6 (q1,q5): no common query, no conflict even though
	// both contain MainSt.
	c, causes := InConflict(f.byID, NewCandidate(f.patterns[3], []int{1, 3}), NewCandidate(f.patterns[5], []int{0, 4}))
	if c || causes != nil {
		t.Errorf("disjoint-query candidates in conflict: %v", causes)
	}
}
