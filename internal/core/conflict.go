package core

import (
	"github.com/sharon-project/sharon/internal/query"
)

// PatternsOverlapIn reports whether patterns pa and pb occupy overlapping
// segments of query q's pattern (paper Definition 6). The executor
// computes and stores the aggregate of a shared pattern as a whole, so a
// query cannot share two patterns whose occurrences intersect.
//
// The definition covers suffix/prefix overlaps (An-k..An = B0..Bk) and, by
// positional intersection, full containment of one pattern in the other.
// Under the multi-occurrence extension (§7.3) every pair of occurrences is
// checked.
func PatternsOverlapIn(q *query.Query, pa, pb query.Pattern) bool {
	occA := q.Pattern.Occurrences(pa)
	occB := q.Pattern.Occurrences(pb)
	for _, ia := range occA {
		for _, ib := range occB {
			if ia < ib+pb.Length() && ib < ia+pa.Length() {
				return true
			}
		}
	}
	return false
}

// InConflict reports whether two sharing candidates are in sharing
// conflict (Definition 6): their patterns overlap in at least one query
// they would both be shared by. The causing query IDs are returned.
func InConflict(w map[int]*query.Query, a, b Candidate) (bool, []int) {
	common := a.CommonQueries(b)
	if len(common) == 0 {
		return false, nil
	}
	var causes []int
	for _, id := range common {
		q, ok := w[id]
		if !ok {
			continue
		}
		if PatternsOverlapIn(q, a.Pattern, b.Pattern) {
			causes = append(causes, id)
		}
	}
	return len(causes) > 0, causes
}
