package core

// GWMIN implements the greedy minimum-degree algorithm for the Maximum
// Weight Independent Set problem (Sakai et al., paper Appendix B,
// Algorithm 8). In each iteration it selects the vertex maximizing
// weight(v)/(degree_Gi(v)+1) in the remaining graph, adds it to the
// independent set, and deletes it together with its neighbors.
//
// The returned indices refer to g's vertices and are sorted ascending.
// The resulting set's weight is guaranteed to be at least
// g.GuaranteedWeight() (Eq. 10), which the reduction step exploits.
func GWMIN(g *Graph) []int {
	n := g.NumVertices()
	alive := make([]bool, n)
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		degree[i] = g.Degree(i)
	}
	remaining := n
	var is []int
	for remaining > 0 {
		best := -1
		var bestRatio float64
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			ratio := g.Vertices[i].Weight / float64(degree[i]+1)
			if best == -1 || ratio > bestRatio {
				best = i
				bestRatio = ratio
			}
		}
		is = insertSorted(is, best)
		// Remove best and its closed neighborhood; update degrees of the
		// second-order neighbors that stay alive.
		removed := []int{best}
		for _, u := range g.Neighbors(best) {
			if alive[u] {
				removed = append(removed, u)
			}
		}
		for _, r := range removed {
			alive[r] = false
			remaining--
		}
		for _, r := range removed {
			for _, u := range g.Neighbors(r) {
				if alive[u] {
					degree[u]--
				}
			}
		}
	}
	return is
}

// IsIndependentSet reports whether the given vertex indices form an
// independent set of g.
func (g *Graph) IsIndependentSet(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// SetWeight sums the weights of the given vertex indices.
func (g *Graph) SetWeight(set []int) float64 {
	var sum float64
	for _, i := range set {
		sum += g.Vertices[i].Weight
	}
	return sum
}

// PlanOf converts a vertex-index set into a sharing plan.
func (g *Graph) PlanOf(set []int) Plan {
	plan := make(Plan, 0, len(set))
	for _, i := range set {
		plan = append(plan, g.Vertices[i].Candidate)
	}
	return plan
}
