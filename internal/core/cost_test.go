package core

import (
	"math"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// costFixture: q1 = (A,B,C,D), q2 = (B,C,E); shared pattern p = (B,C).
type costFixture struct {
	reg   *event.Registry
	w     query.Workload
	p     query.Pattern
	rates Rates
	model *CostModel
}

func newCostFixture() *costFixture {
	reg := event.NewRegistry()
	mk := func(names ...string) query.Pattern {
		p := make(query.Pattern, len(names))
		for i, n := range names {
			p[i] = reg.Intern(n)
		}
		return p
	}
	win := query.Window{Length: 1000, Slide: 100}
	w := query.Workload{
		{ID: 0, Pattern: mk("A", "B", "C", "D"), Agg: query.AggSpec{Kind: query.CountStar}, Window: win},
		{ID: 1, Pattern: mk("B", "C", "E"), Agg: query.AggSpec{Kind: query.CountStar}, Window: win},
	}
	rates := Rates{
		reg.Lookup("A"): 10,
		reg.Lookup("B"): 20,
		reg.Lookup("C"): 30,
		reg.Lookup("D"): 40,
		reg.Lookup("E"): 50,
	}
	return &costFixture{
		reg: reg, w: w, p: mk("B", "C"), rates: rates,
		model: NewCostModel(w, rates),
	}
}

func TestEq1PatternRate(t *testing.T) {
	f := newCostFixture()
	if got := f.rates.PatternRate(f.w[0].Pattern); got != 100 {
		t.Errorf("Rate(q1) = %v, want 10+20+30+40=100", got)
	}
	if got := f.rates.PatternRate(f.p); got != 50 {
		t.Errorf("Rate(p) = %v, want 50", got)
	}
}

func TestEq2NonSharedQuery(t *testing.T) {
	f := newCostFixture()
	// NonShared(q1) = Rate(A) * Rate(q1) = 10 * 100.
	if got := f.model.NonSharedQuery(f.w[0]); got != 1000 {
		t.Errorf("NonShared(q1) = %v, want 1000", got)
	}
	// NonShared(q2) = Rate(B) * (20+30+50) = 20 * 100.
	if got := f.model.NonSharedQuery(f.w[1]); got != 2000 {
		t.Errorf("NonShared(q2) = %v, want 2000", got)
	}
}

func TestEq3NonSharedCandidate(t *testing.T) {
	f := newCostFixture()
	c := NewCandidate(f.p, []int{0, 1})
	if got := f.model.NonShared(c); got != 3000 {
		t.Errorf("NonShared(p, Qp) = %v, want 3000", got)
	}
}

func TestDecompose(t *testing.T) {
	f := newCostFixture()
	prefix, suffix, ok := Decompose(f.w[0], f.p)
	if !ok {
		t.Fatal("decompose failed")
	}
	if prefix.Length() != 1 || f.reg.Name(prefix[0]) != "A" {
		t.Errorf("prefix = %v", prefix.Format(f.reg))
	}
	if suffix.Length() != 1 || f.reg.Name(suffix[0]) != "D" {
		t.Errorf("suffix = %v", suffix.Format(f.reg))
	}
	// q2: empty prefix, suffix (E).
	prefix, suffix, ok = Decompose(f.w[1], f.p)
	if !ok || prefix.Length() != 0 || suffix.Length() != 1 {
		t.Errorf("q2 decompose = %v / %v", prefix, suffix)
	}
	if _, _, ok := Decompose(f.w[0], query.Pattern{f.reg.Lookup("E")}); ok {
		t.Error("decompose of absent pattern succeeded")
	}
}

func TestEq4CompQuery(t *testing.T) {
	f := newCostFixture()
	// q1: prefix (A): 10*10; suffix (D): 40*40 => 1700.
	if got := f.model.CompQuery(f.w[0], f.p); got != 1700 {
		t.Errorf("Comp(p, q1) = %v, want 1700", got)
	}
	// q2: no prefix; suffix (E): 50*50 = 2500.
	if got := f.model.CompQuery(f.w[1], f.p); got != 2500 {
		t.Errorf("Comp(p, q2) = %v, want 2500", got)
	}
}

func TestEq5CombQuery(t *testing.T) {
	f := newCostFixture()
	// q1: Rate(A) * Rate(B) * Rate(D) = 10*20*40 = 8000.
	if got := f.model.CombQuery(f.w[0], f.p); got != 8000 {
		t.Errorf("Comb(p, q1) = %v, want 8000", got)
	}
	// q2: no prefix: Rate(B) * Rate(E) = 20*50 = 1000.
	if got := f.model.CombQuery(f.w[1], f.p); got != 1000 {
		t.Errorf("Comb(p, q2) = %v, want 1000", got)
	}
}

func TestEq7And8SharedAndBenefit(t *testing.T) {
	f := newCostFixture()
	c := NewCandidate(f.p, []int{0, 1})
	// Shared = Rate(B)*Rate(p) + Σ (Comp + Comb)
	//        = 20*50 + (1700+8000) + (2500+1000) = 1000 + 9700 + 3500.
	wantShared := 14200.0
	if got := f.model.Shared(c); got != wantShared {
		t.Errorf("Shared = %v, want %v", got, wantShared)
	}
	if got := f.model.BValue(c); got != 3000-wantShared {
		t.Errorf("BValue = %v, want %v", got, 3000-wantShared)
	}
	// With these rates sharing is non-beneficial; the graph must drop it.
	g := BuildGraph(f.model, []Candidate{c})
	if g.NumVertices() != 0 {
		t.Errorf("non-beneficial candidate kept in graph")
	}
}

// TestBenefitGrowsWithQueries: sharing becomes beneficial as more queries
// share the pattern (the paper's cost-factor observation in §3.4).
func TestBenefitGrowsWithQueries(t *testing.T) {
	reg := event.NewRegistry()
	mk := func(names ...string) query.Pattern {
		p := make(query.Pattern, len(names))
		for i, n := range names {
			p[i] = reg.Intern(n)
		}
		return p
	}
	win := query.Window{Length: 1000, Slide: 100}
	shared := mk("S1", "S2", "S3", "S4", "S5", "S6")
	rates := Rates{}
	for _, tp := range shared {
		rates[tp] = 100
	}
	var w query.Workload
	var prev float64 = math.Inf(-1)
	for n := 2; n <= 6; n++ {
		w = nil
		for i := 0; i < n; i++ {
			suffix := reg.Intern(string(rune('a' + i)))
			rates[suffix] = 1
			pat := append(shared.Clone(), suffix)
			w = append(w, &query.Query{ID: i, Pattern: pat, Agg: query.AggSpec{Kind: query.CountStar}, Window: win})
		}
		m := NewCostModel(w, rates)
		qs := make([]int, n)
		for i := range qs {
			qs[i] = i
		}
		b := m.BValue(NewCandidate(shared, qs))
		if b <= prev {
			t.Fatalf("benefit not increasing: n=%d b=%v prev=%v", n, b, prev)
		}
		prev = b
	}
	if prev <= 0 {
		t.Errorf("benefit with 6 queries should be positive, got %v", prev)
	}
}

// TestMultiplicityExtension (§7.3): duplicate types scale costs by k.
func TestMultiplicityExtension(t *testing.T) {
	reg := event.NewRegistry()
	a, b := reg.Intern("A"), reg.Intern("B")
	win := query.Window{Length: 1000, Slide: 100}
	q := &query.Query{ID: 0, Pattern: query.Pattern{a, b, a}, Agg: query.AggSpec{Kind: query.CountStar}, Window: win}
	m := NewCostModel(query.Workload{q}, Rates{a: 10, b: 5})
	// Rate(pattern) = 10+5+10 = 25; start rate 10; multiplicity 2.
	if got := m.NonSharedQuery(q); got != 10*25*2 {
		t.Errorf("NonShared with duplicates = %v, want 500", got)
	}
}

func TestCandidateHelpers(t *testing.T) {
	reg := event.NewRegistry()
	p := query.Pattern{reg.Intern("A"), reg.Intern("B")}
	c := NewCandidate(p, []int{3, 1, 3, 2})
	if len(c.Queries) != 3 || c.Queries[0] != 1 || c.Queries[2] != 3 {
		t.Errorf("queries not sorted/deduped: %v", c.Queries)
	}
	if !c.HasQuery(2) || c.HasQuery(5) {
		t.Error("HasQuery wrong")
	}
	d := NewCandidate(p, []int{2, 4})
	common := c.CommonQueries(d)
	if len(common) != 1 || common[0] != 2 {
		t.Errorf("CommonQueries = %v", common)
	}
}
