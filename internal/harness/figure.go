package harness

import (
	"fmt"
	"strings"
)

// Point is one measurement of a series at sweep value X.
type Point struct {
	X   float64
	Y   float64
	DNF bool // did not finish (two-step cap / exhaustive blow-up)
}

// Series is one line of a figure (one executor or optimizer).
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced paper figure: a set of series over a common sweep.
type Figure struct {
	ID     string // paper id, e.g. "fig14a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per sweep
// value and one column per series, with DNF marking aborted runs.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  y: %s\n", f.YLabel)

	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	xs := f.xValues()
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, headers)
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					if p.DNF {
						cell = "DNF"
					} else {
						cell = formatNum(p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	return b.String()
}

func (f *Figure) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		b.WriteString("  ")
		for i, cell := range row {
			fmt.Fprintf(b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
}

// SpeedupSummary reports min/max ratio between two series of a figure
// (e.g. A-Seq latency / Sharon latency), skipping DNF points.
func (f *Figure) SpeedupSummary(numerator, denominator string) (min, max float64, ok bool) {
	var num, den *Series
	for i := range f.Series {
		switch f.Series[i].Name {
		case numerator:
			num = &f.Series[i]
		case denominator:
			den = &f.Series[i]
		}
	}
	if num == nil || den == nil {
		return 0, 0, false
	}
	byX := make(map[float64]float64)
	for _, p := range den.Points {
		if !p.DNF && p.Y > 0 {
			byX[p.X] = p.Y
		}
	}
	first := true
	for _, p := range num.Points {
		d, exists := byX[p.X]
		if p.DNF || !exists {
			continue
		}
		r := p.Y / d
		if first {
			min, max, ok, first = r, r, true, false
			continue
		}
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	return min, max, ok
}
