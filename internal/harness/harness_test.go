package harness

import (
	"strings"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

func TestFigureFormat(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "n", YLabel: "ms",
		Series: []Series{
			{Name: "A", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Name: "B", Points: []Point{{X: 1, Y: 5}, {X: 2, DNF: true}}},
		},
	}
	out := f.Format()
	for _, want := range []string{"figX", "demo", "DNF", "A", "B", "n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, ylabel, header, 2 rows
		t.Errorf("Format() has %d lines:\n%s", len(lines), out)
	}
}

func TestFigureSpeedupSummary(t *testing.T) {
	f := Figure{
		Series: []Series{
			{Name: "A-Seq", Points: []Point{{X: 1, Y: 100}, {X: 2, Y: 300}}},
			{Name: "Sharon", Points: []Point{{X: 1, Y: 50}, {X: 2, Y: 60}}},
		},
	}
	min, max, ok := f.SpeedupSummary("A-Seq", "Sharon")
	if !ok || min != 2 || max != 5 {
		t.Errorf("SpeedupSummary = %v..%v ok=%v, want 2..5 true", min, max, ok)
	}
	if _, _, ok := f.SpeedupSummary("A-Seq", "missing"); ok {
		t.Error("summary over missing series reported ok")
	}
}

func TestRunAndRunWindowed(t *testing.T) {
	reg := event.NewRegistry()
	w := query.Workload{
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 4s SLIDE 2s", reg),
	}
	w.Renumber()
	var stream event.Stream
	for i := int64(0); i < 100; i++ {
		name := "A"
		if i%2 == 1 {
			name = "B"
		}
		stream = append(stream, event.Event{Time: (i + 1) * 100, Type: reg.Lookup(name)})
	}
	en, err := exec.NewEngine(w, nil, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunWindowed(en, stream, 4000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 100 || stats.Results == 0 || stats.Windows == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.DNF {
		t.Error("online run reported DNF")
	}
}

func TestRunReportsDNF(t *testing.T) {
	reg := event.NewRegistry()
	w := query.Workload{
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 10s", reg),
	}
	w.Renumber()
	ts, err := exec.NewTwoStep(w, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Cap = 2
	var stream event.Stream
	for i := int64(0); i < 40; i++ {
		name := "A"
		if i >= 20 {
			name = "B"
		}
		stream = append(stream, event.Event{Time: (i + 1) * 100, Type: reg.Lookup(name)})
	}
	stats, err := Run(ts, stream)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.DNF {
		t.Error("cap breach not reported as DNF")
	}
}

// TestTable1Content checks the Table 1 report contains the paper's
// headline numbers: guaranteed weight 38.57, optimal score 50, greedy 43,
// 10 valid plans.
func TestTable1Content(t *testing.T) {
	out, err := Table1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"38.57", "score=50", "score=43", "10 valid plans", "(OakSt, MainSt)", "q6, q7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

// TestExperimentsTinyScale smoke-runs each figure experiment at a tiny
// scale and checks the basic shape invariants hold.
func TestExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds")
	}
	cfg := Config{Scale: 0.05, Seed: 1}

	t.Run("fig13", func(t *testing.T) {
		figs, err := Fig13(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 2 {
			t.Fatalf("fig13 returned %d figures", len(figs))
		}
		lat := figs[0]
		if len(lat.Series) != 4 {
			t.Fatalf("fig13a series = %d", len(lat.Series))
		}
		// The two-step baseline must fall behind the online executor as
		// windows grow (at the tiniest scale the first point can tie on
		// fixed overheads, so assert on the best observed ratio).
		_, max, ok := lat.SpeedupSummary("Flink", "Sharon")
		if ok && max < 1.2 {
			t.Errorf("Flink never fell behind Sharon (max ratio %v)", max)
		}
	})

	t.Run("fig14", func(t *testing.T) {
		figs, err := Fig14QueryCount(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 3 {
			t.Fatalf("fig14bfd returned %d figures", len(figs))
		}
		for _, f := range figs {
			if len(f.Series) != 2 || len(f.Series[0].Points) == 0 {
				t.Errorf("%s malformed", f.ID)
			}
		}
	})

	t.Run("fig15", func(t *testing.T) {
		figs, err := Fig15(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) < 2 {
			t.Fatalf("fig15 returned %d figures", len(figs))
		}
	})

	t.Run("fig16", func(t *testing.T) {
		figs, err := Fig16(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(figs) != 2 {
			t.Fatalf("fig16 returned %d figures", len(figs))
		}
	})
}

func TestGenWorkloadHotTypes(t *testing.T) {
	cfg := gen.WorkloadConfig{NumQueries: 10, PatternLen: 8, SharedChunks: 3, ChunkLen: 3}
	if got := gen.NumHotTypes(cfg); got != 9 {
		t.Errorf("NumHotTypes chunks = %d, want 9", got)
	}
	ccfg := gen.WorkloadConfig{Mode: gen.ModeCorridor, PatternLen: 8, CorridorLen: 12}
	if got := gen.NumHotTypes(ccfg); got != 12 {
		t.Errorf("NumHotTypes corridor = %d, want 12", got)
	}
}
