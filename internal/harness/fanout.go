package harness

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/sharon-project/sharon/internal/obs"
	"github.com/sharon-project/sharon/internal/server"
)

// FanoutBench measures the broadcast egress tier in isolation: an
// in-process Hub fanned out to mock subscriber connections (no sockets),
// swept across subscriber counts. The quantity under test is the
// encode-once invariant at scale — shared frames are rendered once per
// published result no matter how many subscribers receive them, so
// frames/s grows with N while encodes stay equal to results published.
// Each sweep point reports delivered frames/s, ns per delivered frame,
// publish-to-write lag p99, and the per-delivery amortization of the
// encode cost (bytes encoded / frames delivered) in the note.
func FanoutBench(cfg Config) ([]BenchRecord, error) {
	cfg.fill()
	var out []BenchRecord
	for _, subs := range []int{10_000, 100_000, 1_000_000} {
		rec, err := fanoutRun(cfg, subs)
		if err != nil {
			return nil, fmt.Errorf("fanout %d subscribers: %w", subs, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// fanoutConn is a mock subscriber endpoint: counts frames and bytes,
// never blocks — the transport cost is excluded on purpose, leaving the
// hub's own fan-out machinery (cursor walks, filter checks, shared-frame
// handoff) as the measured cost.
type fanoutConn struct {
	frames atomic.Int64
	bytes  atomic.Int64
	eof    atomic.Bool
}

func (c *fanoutConn) WriteBurst(bufs [][]byte) error {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	c.frames.Add(int64(len(bufs)))
	c.bytes.Add(int64(n))
	return nil
}

func (c *fanoutConn) WriteHeartbeat() error { return nil }

func (c *fanoutConn) WriteTerminal(reason string) {
	if reason == "" {
		c.eof.Store(true)
	}
}

// fanoutRun is one sweep point: attach subs mock subscribers, publish a
// result stream sized to a roughly constant total delivery volume, and
// wait for every delivery.
func fanoutRun(cfg Config, subs int) (BenchRecord, error) {
	// ~20M deliveries per point keeps the sweep minutes-not-hours while
	// every point still delivers enough frames to time meaningfully.
	results := cfg.scaled(20_000_000 / subs)
	if results < 16 {
		results = 16
	}
	if results > 4096 {
		results = 4096
	}

	var lagNs obs.Histogram
	h := server.NewHub(server.HubOptions{Retain: 8192, FanoutNs: &lagNs})
	conns := make([]*fanoutConn, subs)
	for i := range conns {
		conns[i] = &fanoutConn{}
		sub, err := h.Subscribe(server.SubOptions{})
		if err != nil {
			return BenchRecord{}, err
		}
		if !sub.Start(conns[i]) {
			return BenchRecord{}, fmt.Errorf("subscription refused at attach %d", i)
		}
	}

	payload := []byte(`{"query":0,"win":1000,"group":7,"seq":0,"end":1000,"agg":"COUNT","value":42}`)
	want := int64(results) * int64(subs)
	start := time.Now()
	for i := 0; i < results; i++ {
		h.Publish(0, 7, int64(i), payload, time.Now().UnixNano())
	}
	for h.Delivered() < want {
		if time.Since(start) > 10*time.Minute {
			return BenchRecord{}, fmt.Errorf("fan-out stalled: %d of %d deliveries", h.Delivered(), want)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	// The encode-once invariant, enforced: shared frames rendered ==
	// results published, NOT results × subscribers.
	if got := h.Encoded(); got != int64(results) {
		return BenchRecord{}, fmt.Errorf("encode-once violated: %d frames encoded for %d published results", got, results)
	}
	var frames, bytes int64
	for _, c := range conns {
		frames += c.frames.Load()
		bytes += c.bytes.Load()
	}
	if frames != want {
		return BenchRecord{}, fmt.Errorf("delivered %d frames, want %d", frames, want)
	}

	// Drain: every subscriber must end with a clean eof terminal.
	h.Shutdown()
	deadline := time.Now().Add(2 * time.Minute)
	for h.Count() > 0 {
		if time.Now().After(deadline) {
			return BenchRecord{}, fmt.Errorf("drain stalled with %d subscribers live", h.Count())
		}
		time.Sleep(time.Millisecond)
	}
	for i, c := range conns {
		if !c.eof.Load() {
			return BenchRecord{}, fmt.Errorf("subscriber %d ended without a clean eof", i)
		}
	}

	lag := lagNs.Snapshot().Summary(1e-6) // ns -> ms
	perSub := float64(bytes) / float64(frames)
	encodedBytes := int64(results) * int64(len(payload))
	rec := BenchRecord{
		Name:         fmt.Sprintf("fanout/subs=%d", subs),
		Executor:     "broadcast hub",
		Events:       int64(results),
		Results:      frames,
		ElapsedNs:    elapsed.Nanoseconds(),
		EventsPerSec: float64(frames) / elapsed.Seconds(),
		NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(frames),
		LatencyP99Ms: lag.P99,
		Note: fmt.Sprintf("subscribers=%d encodes=%d (== results published) %.1f B/frame wire, %.4f B/frame encode amortized",
			subs, results, perSub, float64(encodedBytes)/float64(frames)),
	}
	cfg.Progress("fanout subs=%d: %.2fM frames/s, %.0f ns/frame, lag p99 %.2fms",
		subs, rec.EventsPerSec/1e6, rec.NsPerEvent, lag.P99)
	return rec, nil
}
