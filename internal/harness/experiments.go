package harness

import (
	"fmt"
	"strings"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/query"
)

// Config scales the experiments. Scale = 1 reproduces the paper's shapes
// at roughly one tenth of the paper's absolute stream sizes (so a full
// suite finishes in minutes on a laptop); Scale = 10 matches the paper's
// event counts. EXPERIMENTS.md records the mapping per experiment.
type Config struct {
	// Scale multiplies stream sizes (default 1).
	Scale float64
	// Seed drives all generators (default 1).
	Seed int64
	// Verbose prints progress to the writer set by the caller.
	Progress func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// ratesOf measures per-type rates from a stream sample for the optimizer.
// With GROUP-BY workloads the executor partitions the stream and runs one
// aggregator per group, so the cost model must see per-group rates: the
// non-shared cost is quadratic in the rate while the combination overhead
// is cubic (Eq. 2 vs Eq. 5), and global rates would overestimate the
// latter by the group count.
func ratesOf(stream event.Stream, w query.Workload) core.Rates {
	rates := core.Rates(stream.Rates())
	if len(w) == 0 || !w[0].GroupBy {
		return rates
	}
	keys := make(map[event.GroupKey]bool)
	for _, e := range stream {
		keys[e.Key] = true
	}
	if n := float64(len(keys)); n > 1 {
		for t := range rates {
			rates[t] /= n
		}
	}
	return rates
}

// optimalPlan runs the Sharon optimizer (with conflict resolution) and
// returns its plan. The executor experiments bound the optimizer —
// expansion options and plan-finder time — because their subject is the
// executor; the optimizer's own cost is Figure 15's subject.
func optimalPlan(w query.Workload, rates core.Rates) (core.Plan, error) {
	res, err := core.Optimize(w, rates, core.OptimizerOptions{
		Strategy:     core.StrategySharon,
		Expand:       true,
		ExpandConfig: core.ExpandConfig{MaxOptionsPerCandidate: 4, MaxTotalVertices: 1024},
		Budget:       2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// --- Table 1 -------------------------------------------------------------

// Table1 reproduces Table 1 and the Figure 4 analysis on the paper's
// traffic workload: the sharing candidates, the Sharon graph with the
// paper's weights, the GWMIN guaranteed weight, and the optimal vs greedy
// plans of Examples 7–12.
func Table1(cfg Config) (string, error) {
	cfg.fill()
	tr := gen.Traffic()
	var b strings.Builder

	cands := core.FindCandidates(tr.Workload)
	fmt.Fprintf(&b, "Table 1 — sharing candidates of the traffic workload Q (q1..q7)\n")
	rows := [][]string{{"pattern p", "queries Qp"}}
	for _, c := range cands {
		names := make([]string, len(c.Queries))
		for i, id := range c.Queries {
			names[i] = tr.Workload[id].Label()
		}
		rows = append(rows, []string{c.Pattern.Format(tr.Reg), strings.Join(names, ", ")})
	}
	writeAligned(&b, rows)

	// Figure 4 graph with the paper's benefit values.
	paperCands := make([]core.Candidate, len(tr.Patterns))
	for i, p := range tr.Patterns {
		var qs []int
		for _, q := range tr.Workload {
			if q.Pattern.Contains(p) {
				qs = append(qs, q.ID)
			}
		}
		paperCands[i] = core.NewCandidate(p, qs)
	}
	g := core.BuildGraphWithWeights(tr.Workload, paperCands, tr.Weights)
	fmt.Fprintf(&b, "\nFigure 4 — Sharon graph (paper weights)\n%s", g.Format(tr.Reg, tr.Workload))
	fmt.Fprintf(&b, "GWMIN guaranteed weight (Eq. 10): %.2f\n", g.GuaranteedWeight())

	red := core.Reduce(g)
	fmt.Fprintf(&b, "reduction: %d conflict-ridden pruned, %d conflict-free fast-pathed, %d vertices remain\n",
		red.PrunedConflictRidden, len(red.ConflictFree), red.Reduced.NumVertices())

	plan, score, stats := core.FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
	fmt.Fprintf(&b, "optimal plan (Example 10): %s  score=%.0f  (%d valid plans considered)\n",
		plan.Format(tr.Reg, tr.Workload), score, stats.PlansConsidered)

	set := core.GWMIN(g)
	fmt.Fprintf(&b, "greedy plan  (Example 12): %s  score=%.0f\n",
		g.PlanOf(set).Format(tr.Reg, tr.Workload), g.SetWeight(set))
	return b.String(), nil
}

// --- Figure 13 -----------------------------------------------------------

// Fig13 compares the two-step baselines (Flink-style TwoStep, SPASS)
// against the online approaches (A-Seq, Sharon) while the number of
// events per window grows. Two-step latency explodes and the executors
// stop terminating (DNF) within the sweep, while the online approaches
// stay flat — the paper's Figure 13.
func Fig13(cfg Config) ([]Figure, error) {
	cfg.fill()
	latency := Figure{ID: "fig13a", Title: "Two-step vs online (Linear Road)", XLabel: "events/window", YLabel: "latency ms/window"}
	throughput := Figure{ID: "fig13b", Title: "Two-step vs online (Linear Road)", XLabel: "events/window", YLabel: "throughput events/s"}
	series := []string{"Flink", "SPASS", "A-Seq", "Sharon"}
	lat := make(map[string]*[]Point)
	thr := make(map[string]*[]Point)
	for _, s := range series {
		latency.Series = append(latency.Series, Series{Name: s})
		throughput.Series = append(throughput.Series, Series{Name: s})
	}
	for i := range latency.Series {
		lat[latency.Series[i].Name] = &latency.Series[i].Points
		thr[throughput.Series[i].Name] = &throughput.Series[i].Points
	}

	for _, n := range []int{1000, 2000, 3000, 4000, 5000, 6000, 7000} {
		n = cfg.scaled(n)
		winLen := int64(n) // at 1000 ev/s and 1000 ticks/s: N events per window
		wl, types := gen.GenWorkload(nil2reg(), gen.WorkloadConfig{
			NumQueries: 6, PatternLen: 3,
			SharedChunks: 2, ChunkLen: 2, ChunksPerQuery: 1, FillerPool: 6,
			Window: winLen, Slide: winLen, // tumbling: events/window == n
			Seed: cfg.Seed,
		})
		stream := gen.StreamForWorkload(types, 4, 3*n, 1, 1000, 2, cfg.Seed)
		rates := ratesOf(stream, wl)
		plan, err := optimalPlan(wl, rates)
		if err != nil {
			return nil, err
		}
		// Work budget per window: large enough that the two-step
		// executors finish the low-rate points, small enough that the
		// exponential points abort in seconds instead of the paper's
		// 41 minutes per window.
		const fig13Cap = 32 << 20
		runs := []struct {
			name string
			mk   func() (exec.Executor, error)
		}{
			{"Flink", func() (exec.Executor, error) {
				ts, err := exec.NewTwoStep(wl, exec.Options{})
				if ts != nil {
					ts.Cap = fig13Cap
				}
				return ts, err
			}},
			{"SPASS", func() (exec.Executor, error) {
				sp, err := exec.NewSPASS(wl, plan, exec.Options{})
				if sp != nil {
					sp.Cap = fig13Cap
				}
				return sp, err
			}},
			{"A-Seq", func() (exec.Executor, error) { return exec.NewEngine(wl, nil, exec.Options{}) }},
			{"Sharon", func() (exec.Executor, error) { return exec.NewEngine(wl, plan, exec.Options{}) }},
		}
		for _, r := range runs {
			ex, err := r.mk()
			if err != nil {
				return nil, err
			}
			stats, err := RunWindowed(ex, stream, winLen, winLen)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s n=%d: %w", r.name, n, err)
			}
			cfg.Progress("fig13 n=%d %s", n, stats)
			*lat[r.name] = append(*lat[r.name], Point{X: float64(n), Y: stats.LatencyMs(), DNF: stats.DNF})
			*thr[r.name] = append(*thr[r.name], Point{X: float64(n), Y: stats.Throughput(), DNF: stats.DNF})
		}
	}
	return []Figure{latency, throughput}, nil
}

func nil2reg() *event.Registry { return event.NewRegistry() }

// --- Figure 14 -----------------------------------------------------------

// fig14Run measures A-Seq and Sharon on one configuration.
func fig14Run(wl query.Workload, stream event.Stream, winLen, slide int64) (aseq, sharon metrics.RunStats, err error) {
	rates := ratesOf(stream, wl)
	plan, err := optimalPlan(wl, rates)
	if err != nil {
		return aseq, sharon, err
	}
	ea, err := exec.NewEngine(wl, nil, exec.Options{})
	if err != nil {
		return aseq, sharon, err
	}
	aseq, err = RunWindowed(ea, stream, winLen, slide)
	if err != nil {
		return aseq, sharon, err
	}
	es, err := exec.NewEngine(wl, plan, exec.Options{})
	if err != nil {
		return aseq, sharon, err
	}
	sharon, err = RunWindowed(es, stream, winLen, slide)
	return aseq, sharon, err
}

func twoSeries(id, title, x, y string) Figure {
	return Figure{ID: id, Title: title, XLabel: x, YLabel: y,
		Series: []Series{{Name: "A-Seq"}, {Name: "Sharon"}}}
}

func appendPair(f *Figure, x float64, a, s float64) {
	f.Series[0].Points = append(f.Series[0].Points, Point{X: x, Y: a})
	f.Series[1].Points = append(f.Series[1].Points, Point{X: x, Y: s})
}

// Fig14EventsPerWindow reproduces Fig. 14(a,e): latency and throughput of
// the online approaches on the taxi stand-in while events per window grow
// from 200k to 1.2M (scaled by Config.Scale/10 by default — see
// EXPERIMENTS.md).
func Fig14EventsPerWindow(cfg Config) ([]Figure, error) {
	cfg.fill()
	latF := twoSeries("fig14a", "Online approaches (Taxi)", "events/window", "latency ms/window")
	thrF := twoSeries("fig14e", "Online approaches (Taxi)", "events/window", "throughput events/s")
	for _, base := range []int{200000, 400000, 600000, 800000, 1000000, 1200000} {
		n := cfg.scaled(base / 10)
		winLen := int64(n) // 1000 ev/s at ms ticks: n events per window
		wcfg := gen.WorkloadConfig{
			NumQueries: 20, PatternLen: 10,
			SharedChunks: 3, ChunkLen: 4, ChunksPerQuery: 2, FillerPool: 20,
			DuplicateFraction: 0.5,
			Window:            winLen, Slide: winLen / 2,
			GroupBy: true, Seed: cfg.Seed,
		}
		wl, types := gen.GenWorkload(nil2reg(), wcfg)
		stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 2*n, 50, 1000, 3, cfg.Seed)
		a, s, err := fig14Run(wl, stream, winLen, winLen/2)
		if err != nil {
			return nil, fmt.Errorf("fig14ae n=%d: %w", base, err)
		}
		cfg.Progress("fig14ae n=%d\n  %s\n  %s", base, a, s)
		appendPair(&latF, float64(base), a.LatencyMs(), s.LatencyMs())
		appendPair(&thrF, float64(base), a.Throughput(), s.Throughput())
	}
	return []Figure{latF, thrF}, nil
}

// Fig14QueryCount reproduces Fig. 14(b,f,d): latency, throughput, and peak
// memory of the online approaches on the Linear Road stand-in while the
// workload grows from 20 to 120 queries.
func Fig14QueryCount(cfg Config) ([]Figure, error) {
	cfg.fill()
	latF := twoSeries("fig14b", "Online approaches (Linear Road)", "queries", "latency ms/window")
	thrF := twoSeries("fig14f", "Online approaches (Linear Road)", "queries", "throughput events/s")
	memF := twoSeries("fig14d", "Online approaches (Linear Road)", "queries", "peak memory bytes")
	n := cfg.scaled(20000)
	winLen := int64(n)
	for _, nq := range []int{20, 40, 60, 80, 100, 120} {
		// A fixed street grid with a growing subscriber population: the
		// unique-pattern pool grows sublinearly with the workload, so the
		// sharing degree — and Sharon's advantage — grows with it
		// (paper: 5-fold at 20 queries to 18-fold at 120).
		unique := nq / 6
		if unique < 8 {
			unique = 8
		}
		wcfg := gen.WorkloadConfig{
			NumQueries: nq, PatternLen: 10,
			SharedChunks: 3, ChunkLen: 4, ChunksPerQuery: 2, FillerPool: 20,
			UniquePatterns: unique,
			Window:         winLen, Slide: winLen / 2,
			GroupBy: true, Seed: cfg.Seed,
		}
		wl, types := gen.GenWorkload(nil2reg(), wcfg)
		stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 2*n, 50, 1000, 3, cfg.Seed)
		a, s, err := fig14Run(wl, stream, winLen, winLen/2)
		if err != nil {
			return nil, fmt.Errorf("fig14bfd nq=%d: %w", nq, err)
		}
		cfg.Progress("fig14bfd nq=%d\n  %s\n  %s", nq, a, s)
		appendPair(&latF, float64(nq), a.LatencyMs(), s.LatencyMs())
		appendPair(&thrF, float64(nq), a.Throughput(), s.Throughput())
		appendPair(&memF, float64(nq), float64(a.MemoryBytes()), float64(s.MemoryBytes()))
	}
	return []Figure{latF, thrF, memF}, nil
}

// Fig14PatternLength reproduces Fig. 14(c,g,h): latency, throughput, and
// peak memory of the online approaches on the e-commerce stand-in while
// the pattern length grows from 10 to 30.
func Fig14PatternLength(cfg Config) ([]Figure, error) {
	cfg.fill()
	latF := twoSeries("fig14c", "Online approaches (E-commerce)", "pattern length", "latency ms/window")
	thrF := twoSeries("fig14g", "Online approaches (E-commerce)", "pattern length", "throughput events/s")
	memF := twoSeries("fig14h", "Online approaches (E-commerce)", "pattern length", "peak memory bytes")
	n := cfg.scaled(20000)
	winLen := int64(n)
	for _, plen := range []int{10, 15, 20, 25, 30} {
		wcfg := gen.WorkloadConfig{
			NumQueries: 20, PatternLen: plen,
			SharedChunks: 3, ChunkLen: 2 * plen / 5, ChunksPerQuery: 2, FillerPool: 20,
			DuplicateFraction: 0.5,
			Window:            winLen, Slide: winLen / 2,
			GroupBy: true, Seed: cfg.Seed,
		}
		wl, types := gen.GenWorkload(nil2reg(), wcfg)
		stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 2*n, 20, 1000, 3, cfg.Seed)
		a, s, err := fig14Run(wl, stream, winLen, winLen/2)
		if err != nil {
			return nil, fmt.Errorf("fig14cgh plen=%d: %w", plen, err)
		}
		cfg.Progress("fig14cgh plen=%d\n  %s\n  %s", plen, a, s)
		appendPair(&latF, float64(plen), a.LatencyMs(), s.LatencyMs())
		appendPair(&thrF, float64(plen), a.Throughput(), s.Throughput())
		appendPair(&memF, float64(plen), float64(a.MemoryBytes()), float64(s.MemoryBytes()))
	}
	return []Figure{latF, thrF, memF}, nil
}

// --- Figure 15 -----------------------------------------------------------

// exhaustiveVertexLimit bounds the exhaustive optimizer: beyond ~2^24
// subsets it "fails to terminate", as the paper reports for >20 queries.
const exhaustiveVertexLimit = 24

// Fig15 reproduces Fig. 15(a,b): optimizer latency (per phase) and peak
// memory for the greedy (GO), Sharon (SO), and exhaustive (EO) optimizers
// as the e-commerce workload grows. EO is reported DNF once its expanded
// graph exceeds the subset-enumeration limit.
func Fig15(cfg Config) ([]Figure, error) {
	cfg.fill()
	latF := Figure{ID: "fig15a", Title: "Optimizer latency (E-commerce workload)", XLabel: "queries", YLabel: "latency ms",
		Series: []Series{{Name: "GO"}, {Name: "SO"}, {Name: "EO"}}}
	memF := Figure{ID: "fig15b", Title: "Optimizer memory (E-commerce workload)", XLabel: "queries", YLabel: "peak entries",
		Series: []Series{{Name: "GO"}, {Name: "SO"}, {Name: "EO"}}}
	phasesF := Figure{ID: "fig15a-phases", Title: "Sharon optimizer phase breakdown", XLabel: "queries", YLabel: "latency ms",
		Series: []Series{{Name: "graph"}, {Name: "expand"}, {Name: "reduce"}, {Name: "find"}}}

	for _, nq := range []int{10, 20, 30, 40, 50, 60, 70} {
		wcfg := gen.WorkloadConfig{
			Mode:       gen.ModeCorridor,
			NumQueries: nq, PatternLen: 8, CorridorLen: 10, SliceLen: 4,
			Window: 60000, Slide: 6000,
			GroupBy: true, Seed: cfg.Seed,
		}
		wl, types := gen.GenWorkload(nil2reg(), wcfg)
		// Rates from a small stream sample.
		sample := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 20000, 20, 3000, 3, cfg.Seed)
		rates := ratesOf(sample, wl)

		// The §7.1 expansion is exponential (Eq. 14); all strategies that
		// expand share one cap so their phases stay comparable.
		expandCfg := core.ExpandConfig{MaxOptionsPerCandidate: 8, MaxTotalVertices: 512}
		for i, strat := range []core.Strategy{core.StrategyGreedy, core.StrategySharon, core.StrategyExhaustive} {
			opts := core.OptimizerOptions{Strategy: strat, Expand: strat != core.StrategyGreedy, ExpandConfig: expandCfg}
			if strat == core.StrategyExhaustive {
				// Check feasibility first: build + expand only.
				pre, err := core.Optimize(wl, rates, core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, ExpandConfig: expandCfg})
				if err != nil {
					return nil, err
				}
				verts := pre.ExpandedVertices
				if verts == 0 {
					verts = pre.GraphVertices
				}
				if verts > exhaustiveVertexLimit {
					latF.Series[i].Points = append(latF.Series[i].Points, Point{X: float64(nq), DNF: true})
					memF.Series[i].Points = append(memF.Series[i].Points, Point{X: float64(nq), DNF: true})
					cfg.Progress("fig15 nq=%d EO: DNF (%d expanded candidates)", nq, verts)
					continue
				}
			}
			res, err := core.Optimize(wl, rates, opts)
			if err != nil {
				return nil, fmt.Errorf("fig15 nq=%d %v: %w", nq, strat, err)
			}
			cfg.Progress("fig15 nq=%d %v: %v score=%.3g plan=%d cand (graph %dv/%de)",
				nq, strat, res.TotalElapsed.Round(time.Microsecond), res.Score, len(res.Plan), res.GraphVertices, res.GraphEdges)
			latF.Series[i].Points = append(latF.Series[i].Points, Point{X: float64(nq), Y: float64(res.TotalElapsed.Microseconds()) / 1000})
			memF.Series[i].Points = append(memF.Series[i].Points, Point{X: float64(nq), Y: float64(res.PeakLiveStates)})
			if strat == core.StrategySharon {
				for pi, name := range []string{"graph", "expand", "reduce", "find"} {
					d := res.PhaseDuration(name)
					phasesF.Series[pi].Points = append(phasesF.Series[pi].Points,
						Point{X: float64(nq), Y: float64(d.Microseconds()) / 1000})
				}
			}
		}
	}
	return []Figure{latF, memF, phasesF}, nil
}

// --- Figure 16 -----------------------------------------------------------

// Fig16 reproduces Fig. 16: executor latency and memory when guided by a
// greedily chosen plan versus an optimal plan, on the taxi stand-in, as
// the workload grows.
func Fig16(cfg Config) ([]Figure, error) {
	cfg.fill()
	latF := Figure{ID: "fig16-latency", Title: "Plan quality (Taxi)", XLabel: "queries", YLabel: "latency ms/window",
		Series: []Series{{Name: "Greedy plan"}, {Name: "Optimal plan"}}}
	memF := Figure{ID: "fig16-memory", Title: "Plan quality (Taxi)", XLabel: "queries", YLabel: "peak memory bytes",
		Series: []Series{{Name: "Greedy plan"}, {Name: "Optimal plan"}}}
	n := cfg.scaled(5000)
	winLen := int64(n)
	// 7 queries per city neighborhood: 21..182 queries (paper: 20..180).
	// Street popularity is skewed so the greedy optimizer repeats
	// Example 12's mistake in every neighborhood.
	for _, copies := range []int{3, 9, 15, 21, 26} {
		nq := 7 * copies
		wl, types, weights := gen.TrafficReplicas(nil2reg(), copies)
		for i := range wl {
			wl[i].Window = query.Window{Length: winLen, Slide: winLen / 2}
		}
		stream := gen.Generate(gen.StreamConfig{
			Types: types, TypeWeights: weights,
			NumKeys: 50, Events: 2 * n,
			StartRate: 1000, EndRate: 1000,
			Seed: cfg.Seed,
		})
		// The optimizer sees each neighborhood's peak-hour rate profile
		// (constant across city sizes) rather than the diluted city-wide
		// average: plan quality is decided by the per-neighborhood weight
		// structure, which is what the paper's Example 12 exercises.
		rates := core.Rates{}
		for i, t := range types {
			rates[t] = weights[i] * 1.5
		}

		greedy, err := core.Optimize(wl, rates, core.OptimizerOptions{Strategy: core.StrategyGreedy})
		if err != nil {
			return nil, err
		}
		optimal, err := core.Optimize(wl, rates, core.OptimizerOptions{Strategy: core.StrategySharon, Expand: true, Budget: 10 * time.Second})
		if err != nil {
			return nil, err
		}
		cfg.Progress("fig16 nq=%d greedy score=%.4g optimal score=%.4g", nq, greedy.Score, optimal.Score)
		for i, plan := range []core.Plan{greedy.Plan, optimal.Plan} {
			// Repeat and keep the fastest run; the absolute times are
			// small enough that scheduler noise would otherwise dominate.
			var stats metrics.RunStats
			for rep := 0; rep < 3; rep++ {
				ex, err := exec.NewEngine(wl, plan, exec.Options{})
				if err != nil {
					return nil, err
				}
				s, err := RunWindowed(ex, stream, winLen, winLen/2)
				if err != nil {
					return nil, fmt.Errorf("fig16 nq=%d: %w", nq, err)
				}
				if rep == 0 || s.Elapsed < stats.Elapsed {
					stats = s
				}
			}
			cfg.Progress("fig16 nq=%d plan=%d: %s", nq, i, stats)
			latF.Series[i].Points = append(latF.Series[i].Points, Point{X: float64(nq), Y: stats.LatencyMs()})
			memF.Series[i].Points = append(memF.Series[i].Points, Point{X: float64(nq), Y: float64(stats.MemoryBytes())})
		}
	}
	return []Figure{latF, memF}, nil
}

// All runs every experiment and returns the formatted report.
func All(cfg Config) (string, error) {
	cfg.fill()
	var b strings.Builder
	t1, err := Table1(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(t1)
	b.WriteString("\n")
	for _, f := range []func(Config) ([]Figure, error){
		Fig13, Fig14EventsPerWindow, Fig14QueryCount, Fig14PatternLength, Fig15, Fig16,
	} {
		figs, err := f(cfg)
		if err != nil {
			return "", err
		}
		for _, fig := range figs {
			b.WriteString(fig.Format())
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// Experiments maps experiment ids to their runners, for the CLI.
var Experiments = map[string]func(Config) ([]Figure, error){
	"fig13":    Fig13,
	"fig14ae":  Fig14EventsPerWindow,
	"fig14bf":  Fig14QueryCount,
	"fig14cg":  Fig14PatternLength,
	"fig15":    Fig15,
	"fig16":    Fig16,
	"parallel": ParallelScaling,
}
