package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/loadgen"
	"github.com/sharon-project/sharon/internal/server"
)

// wireQueries is the wire experiment's served workload: the demo
// shapes (one shared (C,D) segment over A..D) at the hot-path bench's
// window geometry (1024-tick windows sliding 256). ServerBench keeps
// the demo's 4s/1s windows to track the served default; the wire
// experiment shrinks them so the engine runs at its BENCH_hotpath
// cost and the ingest codec — the thing under test — dominates the
// remainder.
var wireQueries = []string{
	"RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WHERE [k] WITHIN 1024ms SLIDE 256ms",
	"RETURN COUNT(*) PATTERN SEQ(C, D) WHERE [k] WITHIN 1024ms SLIDE 256ms",
	"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 1024ms SLIDE 256ms",
}

// WireBench compares the ingest codecs end to end: the same loopback
// rig as ServerBench (in-process sharond behind a real listener,
// loadgen driving it) run once per wire mode — NDJSON posts, binary
// one-shot posts, and one streaming binary connection with per-batch
// acks — plus a decode-only microbenchmark of the binary edge with
// its allocation count. The committed BENCH_wire.json pins the
// streaming path inside the ROADMAP's ≤3× engine-cost target and the
// edge at ~0 allocs/event.
func WireBench(cfg Config) ([]BenchRecord, error) {
	cfg.fill()
	events := cfg.scaled(200000)
	var out []BenchRecord
	for _, mode := range []string{"ndjson", "binary", "stream"} {
		rec, err := wireRun(cfg, mode, events)
		if err != nil {
			return nil, fmt.Errorf("wire %s: %w", mode, err)
		}
		out = append(out, rec)
	}
	rec, err := wireDecodeRun(cfg, events)
	if err != nil {
		return nil, fmt.Errorf("wire decode: %w", err)
	}
	return append(out, rec), nil
}

// wireRun is one loopback load run over the given wire mode, with the
// engine held sequential so the codec is the only variable.
func wireRun(cfg Config, mode string, events int) (BenchRecord, error) {
	srv, err := server.New(server.Config{
		Queries:     wireQueries,
		Parallelism: 1,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL: ts.URL,
		Events:  events,
		Wire:    mode,
		Groups:  13,
		Within:  1024,
		Slide:   256,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	cfg.Progress("wire %s: %.0f ev/s, %d results, p50 %.2fms p99 %.2fms",
		mode, rep.EventsPerSec, rep.Results, rep.LatencyP50Ms, rep.LatencyP99Ms)
	if rep.Results == 0 {
		return BenchRecord{}, fmt.Errorf("no results received over loopback")
	}
	ns := 0.0
	if rep.Events > 0 {
		ns = float64(rep.ElapsedNs) / float64(rep.Events)
	}
	return BenchRecord{
		Name:         "wire-loopback/" + mode,
		Executor:     "sharond",
		Events:       rep.Events,
		Results:      rep.Results,
		ElapsedNs:    rep.ElapsedNs,
		EventsPerSec: rep.EventsPerSec,
		NsPerEvent:   ns,
		LatencyP50Ms: rep.LatencyP50Ms,
		LatencyP99Ms: rep.LatencyP99Ms,
	}, nil
}

// wireDecodeRun measures the binary ingest edge in isolation: decode
// pre-encoded one-shot bodies (512-event batches, the loadgen default)
// into pooled batches, counting heap allocations — the ~0 allocs/event
// figure the hotpath annotations machine-enforce.
func wireDecodeRun(cfg Config, events int) (BenchRecord, error) {
	names := []string{"A", "B", "C", "D"}
	lookup := make(map[string]sharon.Type, len(names))
	for i, n := range names {
		lookup[n] = sharon.Type(i + 1)
	}
	const batch = 512
	bodies := make([][]byte, 0, (events+batch-1)/batch)
	evs := make([]sharon.Event, 0, batch)
	total := 0
	for tick := int64(1); total < events; {
		evs = evs[:0]
		for len(evs) < batch && total < events {
			i := int64(total)
			evs = append(evs, sharon.Event{
				Time: tick,
				Type: sharon.Type(i%int64(len(names)) + 1),
				Key:  sharon.GroupKey(i % 13),
				Val:  float64(i%7 + 1),
			})
			tick++
			total++
		}
		body := server.AppendWireTypeTable(server.AppendWireHeader(nil), names)
		bodies = append(bodies, server.AppendWireBatch(body, evs, -1))
	}

	// Warm the batch pool so the measured section sees steady state.
	for i := 0; i < 2; i++ {
		b := server.GetBatch()
		if err := server.DecodeWireBatch(bodies[0], lookup, b); err != nil {
			return BenchRecord{}, err
		}
		server.PutBatch(b)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	decoded := int64(0)
	for _, body := range bodies {
		b := server.GetBatch()
		if err := server.DecodeWireBatch(body, lookup, b); err != nil {
			return BenchRecord{}, err
		}
		decoded += int64(len(b.Events))
		server.PutBatch(b)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if decoded != int64(total) {
		return BenchRecord{}, fmt.Errorf("decoded %d of %d events", decoded, total)
	}
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(decoded)
	bytesPer := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(decoded)
	ns := float64(elapsed.Nanoseconds()) / float64(decoded)
	cfg.Progress("wire decode: %.1f ns/event, %.4f allocs/event", ns, allocs)
	return BenchRecord{
		Name:               "wire-decode/binary",
		Executor:           "sharond edge",
		Events:             decoded,
		ElapsedNs:          elapsed.Nanoseconds(),
		EventsPerSec:       float64(decoded) / elapsed.Seconds(),
		NsPerEvent:         ns,
		AllocsPerEvent:     allocs,
		AllocBytesPerEvent: bytesPer,
	}, nil
}
