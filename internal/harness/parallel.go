package harness

import (
	"fmt"
	"runtime"

	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
)

// ParallelScaling measures the sharded parallel executor against the
// sequential engine on a grouped multi-query workload, sweeping the
// worker count (1 = sequential baseline). Not a paper figure: it
// characterizes the parallel execution layer this repository adds on top
// of the paper's engine (the sharding axes follow §7.2 segment
// orthogonality and per-group independence). Ideal scaling is limited by
// GOMAXPROCS (currently reported in the figure title).
func ParallelScaling(cfg Config) ([]Figure, error) {
	cfg.fill()
	n := cfg.scaled(40000)
	winLen := int64(8000)
	wcfg := gen.WorkloadConfig{
		NumQueries: 20, PatternLen: 10,
		SharedChunks: 3, ChunkLen: 4, ChunksPerQuery: 2, FillerPool: 20,
		UniquePatterns: 10,
		Window:         winLen, Slide: winLen / 2,
		GroupBy: true, Seed: cfg.Seed,
	}
	wl, types := gen.GenWorkload(nil2reg(), wcfg)
	stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), n, 50, 1000, 3, cfg.Seed)
	rates := ratesOf(stream, wl)
	plan, err := optimalPlan(wl, rates)
	if err != nil {
		return nil, err
	}

	thrF := Figure{
		ID:     "parallel",
		Title:  fmt.Sprintf("Sharded parallel executor (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		XLabel: "workers",
		YLabel: "throughput events/s",
		Series: []Series{{Name: "Sharon"}},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var ex exec.Executor
		if workers == 1 {
			ex, err = exec.NewEngine(wl, plan, exec.Options{})
		} else {
			ex, err = exec.NewParallelEngine(wl, plan, workers, exec.Options{})
		}
		if err != nil {
			return nil, err
		}
		stats, err := Run(ex, stream)
		if err != nil {
			return nil, fmt.Errorf("parallel workers=%d: %w", workers, err)
		}
		if p, ok := ex.(*exec.Parallel); ok {
			cfg.Progress("parallel workers=%d: %s\n  %s", workers, stats, p.Stats())
		} else {
			cfg.Progress("parallel workers=%d: %s", workers, stats)
		}
		thrF.Series[0].Points = append(thrF.Series[0].Points, Point{X: float64(workers), Y: stats.Throughput()})
	}
	return []Figure{thrF}, nil
}
