package harness

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/query"
)

// Bursty measures the burst-adaptive executor against the two static
// policies it interpolates between — always-shared and always-split — on
// streams whose arrival rate alternates between bursts and valleys, plus
// a constant-rate control.
//
// The workload is built so the share-vs-split trade-off is real in both
// directions: nq queries share a hot (C,D) suffix behind distinct
// low-rate prefixes, under highly overlapping windows. During a burst
// the split engines' per-event extend cost grows with the live-record
// count (which grows with the rate), while the shared engine pays a
// rate-independent snapshot-append overhead per suffix START — so
// sharing wins bursts and loses valleys, and a static plan loses one
// phase either way. The adaptive executor shares bursts and splits
// valleys, paying for the hand-offs; the committed BENCH_bursty.json
// records whether that trade nets out (CI gates it, see sharon-benchgate
// -faster).
func Bursty(cfg Config) ([]BenchRecord, error) {
	cfg.fill()
	reg := event.NewRegistry()
	const nq = 8
	hot := []event.Type{reg.Intern("C"), reg.Intern("D")}
	// Distinct two-type prefixes drawn from a shared rare pool: each
	// query's private prefix stays cheap while no two chains merge.
	pool := make([]event.Type, nq)
	for i := range pool {
		pool[i] = reg.Intern(fmt.Sprintf("P%d", i))
	}
	w := make(query.Workload, nq)
	queries := make([]int, nq)
	win := query.Window{Length: 512, Slide: 32}
	for i := range w {
		w[i] = &query.Query{
			ID:      i,
			Pattern: query.Pattern{pool[i], pool[(i+1)%nq], hot[0], hot[1]},
			Agg:     query.AggSpec{Kind: query.CountStar},
			Window:  win,
		}
		queries[i] = i
	}
	types := append(append([]event.Type(nil), hot...), pool...)
	weights := make([]float64, len(types))
	weights[0], weights[1] = 6, 6 // C, D carry ~43% of the stream
	for i := 2; i < len(weights); i++ {
		weights[i] = 2
	}

	// The static shared plan is what a deployment optimized for its peak
	// load would run: the Sharon optimizer's choice at burst-rate traffic
	// (falling back to the full (C,D) candidate if the optimizer declines
	// to share).
	burstSample := gen.Generate(gen.StreamConfig{
		Types: types, TypeWeights: weights,
		Events: 20000, StartRate: 1000, EndRate: 1000, Seed: cfg.Seed,
	})
	sharedPlan, err := optimalPlan(w, ratesOf(burstSample, w))
	if err != nil {
		return nil, err
	}
	planNote := "optimizer plan at burst rates"
	if len(sharedPlan) == 0 {
		sharedPlan = core.Plan{core.NewCandidate(query.Pattern{hot[0], hot[1]}, queries)}
		planNote = "forced (C,D) candidate: optimizer declined to share at burst rates"
	}

	adaptiveCfg := func() exec.DynamicConfig {
		return exec.DynamicConfig{
			Adaptive:   true,
			CheckEvery: 128,
			Burst:      exec.BurstConfig{Confirm: 2},
		}
	}

	shapes := []struct {
		name   string
		stream event.Stream
	}{}
	// Bursts run at the tick-resolution ceiling (1000 ev/s); valleys at
	// 200 ev/s carry most of the stream's *time* (and the majority of its
	// events), so splitting wins most of the clock while sharing wins the
	// load spikes. The event counts span several full cycles so hand-off
	// costs are amortized the way a long-running deployment would see
	// them. Poisson gets a longer mean burst (its exponential on-times
	// make many bursts far shorter than the mean, and a sub-second burst
	// ends before a hand-off can pay for itself).
	for _, sh := range []struct {
		shape  gen.BurstShape
		events int
		period float64
		duty   float64
	}{
		{gen.ShapeSquare, 60000, 72, 8.0 / 72},
		{gen.ShapePoisson, 80000, 96, 12.0 / 96},
		{gen.ShapeRamp, 60000, 72, 8.0 / 72},
	} {
		shapes = append(shapes, struct {
			name   string
			stream event.Stream
		}{"bursty-" + sh.shape.String(), gen.GenerateBursty(gen.BurstyConfig{
			Types: types, TypeWeights: weights,
			Events:   cfg.scaled(sh.events),
			BaseRate: 200, BurstRate: 1000,
			Period: sh.period, Duty: sh.duty,
			Shape: sh.shape, Seed: cfg.Seed,
		})})
	}
	shapes = append(shapes, struct {
		name   string
		stream event.Stream
	}{"steady", gen.Generate(gen.StreamConfig{
		Types: types, TypeWeights: weights,
		Events:    cfg.scaled(20000),
		StartRate: 300, EndRate: 300, Seed: cfg.Seed,
	})})

	var out []BenchRecord
	for _, sh := range shapes {
		runs := []struct {
			name string
			mk   func() (exec.Executor, error)
		}{
			{"static-shared", func() (exec.Executor, error) {
				return exec.NewEngine(w, sharedPlan, exec.Options{})
			}},
			{"static-split", func() (exec.Executor, error) {
				return exec.NewEngine(w, nil, exec.Options{})
			}},
			{"adaptive", func() (exec.Executor, error) {
				return exec.NewDynamic(w, nil, adaptiveCfg())
			}},
		}
		// The CI gate compares rows within this file, so each row is the
		// best of several repetitions: scheduler noise only ever slows a
		// run down, so min wall time is the stable estimator. Reps are
		// interleaved across the executors (rep-outer loop) so a transient
		// load spike degrades one rep of every row rather than every rep
		// of one row — min then drops it from all of them.
		const reps = 6
		best := make([]metrics.RunStats, len(runs))
		bestEx := make([]exec.Executor, len(runs))
		for rep := 0; rep < reps; rep++ {
			for i, r := range runs {
				ex, err := r.mk()
				if err != nil {
					return nil, err
				}
				stats, err := Run(ex, sh.stream)
				if err != nil {
					return nil, fmt.Errorf("bursty %s/%s: %w", sh.name, r.name, err)
				}
				if rep == 0 || stats.Elapsed < best[i].Elapsed {
					best[i], bestEx[i] = stats, ex
				}
			}
		}
		for i, r := range runs {
			rec := NewBenchRecord(sh.name+"/"+r.name, best[i])
			switch x := bestEx[i].(type) {
			case *exec.Dynamic:
				rec.Note = fmt.Sprintf("share=%d split=%d pruned=%d", x.ShareTransitions, x.SplitTransitions, x.PrunedStarts())
			case *exec.Engine:
				if r.name == "static-shared" {
					rec.Note = planNote
				}
			}
			cfg.Progress("bursty %s/%s: %s", sh.name, r.name, best[i])
			out = append(out, rec)
		}
	}
	return out, nil
}
