package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/metrics"
	"github.com/sharon-project/sharon/internal/query"
)

// BenchRecord is one machine-readable measurement of an executor run: the
// per-event cost figures the repo's perf trajectory is tracked by. It is
// the unit of the BENCH_<exp>.json files sharon-bench emits (format
// documented in README "Benchmarking").
type BenchRecord struct {
	// Name identifies the run within the experiment (variant, sweep point).
	Name string `json:"name"`
	// Executor is the strategy name ("Sharon", "A-Seq", ...).
	Executor string `json:"executor"`
	// Events is the number of events processed in the measured section.
	Events int64 `json:"events"`
	// Results is the number of (query, window, group) aggregates emitted.
	Results int64 `json:"results"`
	// ElapsedNs is the measured wall-clock time in nanoseconds.
	ElapsedNs int64 `json:"elapsed_ns"`
	// EventsPerSec is the sustained throughput.
	EventsPerSec float64 `json:"events_per_sec"`
	// NsPerEvent is the average per-event processing cost.
	NsPerEvent float64 `json:"ns_per_event"`
	// AllocsPerEvent is the average heap allocations per event.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// AllocBytesPerEvent is the average heap bytes allocated per event.
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event"`
	// PeakLiveStates is the executor's peak live aggregate-state count
	// (the paper's §8.1 memory unit).
	PeakLiveStates int64 `json:"peak_live_states"`
	// LatencyP50Ms through LatencyMaxMs carry the end-to-end
	// ingest-to-emit window latency distribution for server (loopback)
	// runs, exact percentiles over one sample per window; zero for
	// in-process runs, whose per-window figure is the cost proxy
	// RunStats.LatencyMs (see its doc for the distinction).
	LatencyP50Ms  float64 `json:"latency_p50_ms,omitempty"`
	LatencyP90Ms  float64 `json:"latency_p90_ms,omitempty"`
	LatencyP99Ms  float64 `json:"latency_p99_ms,omitempty"`
	LatencyP999Ms float64 `json:"latency_p999_ms,omitempty"`
	LatencyMaxMs  float64 `json:"latency_max_ms,omitempty"`
	// DNF marks a run aborted by a work cap.
	DNF bool `json:"dnf,omitempty"`
	// Note carries free-form provenance (e.g. for pinned baselines).
	Note string `json:"note,omitempty"`
}

// NewBenchRecord converts run stats into a bench record.
func NewBenchRecord(name string, s metrics.RunStats) BenchRecord {
	return BenchRecord{
		Name:               name,
		Executor:           s.Executor,
		Events:             s.Events,
		Results:            s.Results,
		ElapsedNs:          s.Elapsed.Nanoseconds(),
		EventsPerSec:       s.Throughput(),
		NsPerEvent:         s.NsPerEvent(),
		AllocsPerEvent:     s.AllocsPerEvent(),
		AllocBytesPerEvent: s.AllocBytesPerEvent(),
		PeakLiveStates:     s.PeakLiveStates,
		DNF:                s.DNF,
	}
}

// BenchFile is the on-disk shape of a BENCH_<exp>.json perf snapshot.
type BenchFile struct {
	// Experiment is the sharon-bench experiment id.
	Experiment string `json:"experiment"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Records are the fresh measurements of this run.
	Records []BenchRecord `json:"records"`
	// Reference holds pinned historical measurements the records are
	// compared against (e.g. the pre-ring hot-path baseline).
	Reference []BenchRecord `json:"reference,omitempty"`
	// Figures embeds the experiment's figure data (per-sweep series),
	// when the experiment produces figures.
	Figures []Figure `json:"figures,omitempty"`
}

// WriteBenchFile writes BENCH_<exp>.json into dir and returns the path.
func WriteBenchFile(dir string, f BenchFile) (string, error) {
	if f.Go == "" {
		f.Go = runtime.Version()
	}
	path := filepath.Join(dir, "BENCH_"+f.Experiment+".json")
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// HotpathBaseline pins the steady-state hot-path cost of the pre-ring
// engine (map-keyed window totals, per-START heap allocation, map type
// dispatch), measured with the same BenchmarkHotPathProcess rig at commit
// c5be38a on an Intel Xeon @ 2.10GHz. The committed BENCH_hotpath.json
// carries it as the reference the ring/pooled engine is compared against.
var HotpathBaseline = BenchRecord{
	Name:               "hotpath-steady-state",
	Executor:           "Sharon (pre-ring)",
	NsPerEvent:         1239,
	AllocsPerEvent:     1.80,
	AllocBytesPerEvent: 269,
	Note:               "pinned pre-PR baseline: BenchmarkHotPathProcess at commit c5be38a (map-based winTotals/snaps, unpooled StartRec)",
}

// Hotpath measures the engine's steady-state per-event cost: a fixed
// three-query workload (one shared segment) over a 13-group cyclic stream,
// with engine construction and warm-up excluded from the measured section.
// It is the JSON-emitting counterpart of BenchmarkHotPathProcess /
// TestHotPathAllocs in internal/exec.
func Hotpath(cfg Config) ([]BenchRecord, error) {
	cfg.fill()
	reg := event.NewRegistry()
	types := []event.Type{reg.Intern("A"), reg.Intern("B"), reg.Intern("C"), reg.Intern("D")}
	pat := func(s string) query.Pattern {
		p := make(query.Pattern, len(s))
		for i := range s {
			p[i] = types[s[i]-'A']
		}
		return p
	}
	win := query.Window{Length: 1024, Slide: 256}
	wl := query.Workload{
		&query.Query{ID: 0, Pattern: pat("ABCD"), Agg: query.AggSpec{Kind: query.CountStar}, Window: win, GroupBy: true},
		&query.Query{ID: 1, Pattern: pat("CD"), Agg: query.AggSpec{Kind: query.CountStar}, Window: win, GroupBy: true},
		&query.Query{ID: 2, Pattern: pat("AB"), Agg: query.AggSpec{Kind: query.CountStar}, Window: win, GroupBy: true},
	}
	plan := core.Plan{core.NewCandidate(pat("CD"), []int{0, 1})}
	// The stream cycles through the full interned type universe
	// (reg.Count()), so the engine's dense per-type dispatch tables see
	// every type they were sized for.
	nTypes := int64(reg.Count())

	warmup := cfg.scaled(100000)
	measured := cfg.scaled(1000000)
	mkStream := func(from, n int) event.Stream {
		out := make(event.Stream, n)
		for k := 0; k < n; k++ {
			i := int64(from + k)
			// 13 groups: coprime to the type cycle, so every group sees
			// every type and the full match/extend path is exercised.
			out[k] = event.Event{
				Time: 1 + i,
				Type: types[i%nTypes],
				Key:  event.GroupKey(i % 13),
				Val:  float64(i%7) + 1,
			}
		}
		return out
	}
	warm := mkStream(0, warmup)
	meas := mkStream(warmup, measured)

	var out []BenchRecord
	runs := []struct {
		name string
		mk   func() (exec.Executor, error)
	}{
		{"sharon", func() (exec.Executor, error) {
			return exec.NewEngine(wl, plan, exec.Options{})
		}},
		{"aseq", func() (exec.Executor, error) {
			return exec.NewEngine(wl, nil, exec.Options{})
		}},
		{"sharon-parallel-4w", func() (exec.Executor, error) {
			return exec.NewParallelEngine(wl, plan, 4, exec.Options{})
		}},
	}
	for _, r := range runs {
		ex, err := r.mk()
		if err != nil {
			return nil, err
		}
		for _, e := range warm {
			if err := ex.Process(e); err != nil {
				return nil, fmt.Errorf("hotpath %s warmup: %w", r.name, err)
			}
		}
		stats, err := Run(ex, meas)
		if err != nil {
			return nil, fmt.Errorf("hotpath %s: %w", r.name, err)
		}
		cfg.Progress("hotpath %s: %s", r.name, stats)
		rec := NewBenchRecord("hotpath-steady-state/"+r.name, stats)
		out = append(out, rec)
	}
	return out, nil
}

// FormatBenchRecords renders records as an aligned text table.
func FormatBenchRecords(recs []BenchRecord) string {
	var b strings.Builder
	rows := [][]string{{"name", "executor", "events", "ev/s", "ns/event", "allocs/event", "B/event", "peak states"}}
	for _, r := range recs {
		rows = append(rows, []string{
			r.Name, r.Executor,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.1f", r.NsPerEvent),
			fmt.Sprintf("%.4f", r.AllocsPerEvent),
			fmt.Sprintf("%.1f", r.AllocBytesPerEvent),
			fmt.Sprintf("%d", r.PeakLiveStates),
		})
	}
	writeAligned(&b, rows)
	return b.String()
}
