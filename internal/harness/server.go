package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"github.com/sharon-project/sharon/internal/loadgen"
	"github.com/sharon-project/sharon/internal/server"
)

// ServerBench measures end-to-end sharond serving over loopback: an
// in-process server behind a real HTTP listener, driven by the shared
// loadgen driver (ingest POSTs honoring backpressure, a subscription
// receiving every pushed window, a closing watermark). It reports
// sustained ingest events/sec and p50/p99 ingest-to-emit latency for a
// sequential and a parallel engine, so the server numbers land in the
// BENCH_*.json trajectory next to the in-process hot path.
func ServerBench(cfg Config) ([]BenchRecord, error) {
	cfg.fill()
	events := cfg.scaled(200000)
	variants := []struct {
		name string
		par  int
	}{
		{"seq", 1},
		{fmt.Sprintf("par-%dw", min(4, runtime.GOMAXPROCS(0))), min(4, runtime.GOMAXPROCS(0))},
	}
	var out []BenchRecord
	for _, v := range variants {
		rec, err := serverRun(cfg, v.name, v.par, events)
		if err != nil {
			return nil, fmt.Errorf("server %s: %w", v.name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func serverRun(cfg Config, name string, par, events int) (BenchRecord, error) {
	srv, err := server.New(server.Config{
		Queries:     server.DefaultQueries,
		Parallelism: par,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL: ts.URL,
		Events:  events,
	})
	if err != nil {
		return BenchRecord{}, err
	}
	cfg.Progress("server %s: %.0f ev/s, %d results, p50 %.2fms p99 %.2fms",
		name, rep.EventsPerSec, rep.Results, rep.LatencyP50Ms, rep.LatencyP99Ms)
	if rep.Results == 0 {
		return BenchRecord{}, fmt.Errorf("no results received over loopback")
	}
	ns := 0.0
	if rep.Events > 0 {
		ns = float64(rep.ElapsedNs) / float64(rep.Events)
	}
	return BenchRecord{
		Name:          "server-loopback/" + name,
		Executor:      "sharond",
		Events:        rep.Events,
		Results:       rep.Results,
		ElapsedNs:     rep.ElapsedNs,
		EventsPerSec:  rep.EventsPerSec,
		NsPerEvent:    ns,
		LatencyP50Ms:  rep.LatencyP50Ms,
		LatencyP90Ms:  rep.LatencyP90Ms,
		LatencyP99Ms:  rep.LatencyP99Ms,
		LatencyP999Ms: rep.LatencyP999Ms,
		LatencyMaxMs:  rep.LatencyMaxMs,
	}, nil
}
