// Package harness replays streams through executors with measurement and
// regenerates every table and figure of the paper's evaluation (§8). Each
// experiment is addressable by its paper id (fig13, fig14ae, ..., table1)
// and prints the same rows/series the paper reports.
package harness

import (
	"errors"
	"runtime"
	"time"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/metrics"
)

// Run replays stream through ex, measuring wall-clock time, emitted
// results, peak memory, and heap-allocation deltas (runtime.MemStats
// Mallocs/TotalAlloc across all goroutines — parallel executors' workers
// included). A run aborted by the two-step sequence cap returns stats with
// DNF set instead of an error.
func Run(ex exec.Executor, stream event.Stream) (metrics.RunStats, error) {
	stats := metrics.RunStats{Executor: ex.Name(), Events: int64(len(stream))}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	err := replay(ex, stream)
	stats.Elapsed = time.Since(start)
	runtime.ReadMemStats(&ms1)
	stats.Allocs = int64(ms1.Mallocs - ms0.Mallocs)
	stats.AllocBytes = int64(ms1.TotalAlloc - ms0.TotalAlloc)
	stats.PeakLiveStates = ex.PeakLiveStates()
	stats.Results = ex.ResultCount()
	if err != nil {
		if errors.Is(err, exec.ErrCapExceeded) {
			stats.DNF = true
			return stats, nil
		}
		return stats, err
	}
	return stats, nil
}

func replay(ex exec.Executor, stream event.Stream) error {
	type batcher interface{ FeedBatch([]event.Event) error }
	var err error
	if b, ok := ex.(batcher); ok {
		err = b.FeedBatch(stream)
	} else {
		for _, e := range stream {
			if err = ex.Process(e); err != nil {
				break
			}
		}
	}
	if err != nil {
		// A parallel executor abandoned mid-run must be torn down or
		// its worker goroutines leak.
		if p, ok := ex.(*exec.Parallel); ok {
			p.Stop()
		}
		return err
	}
	return ex.Flush()
}

// RunWindowed is Run with an explicit window/slide so latency-per-window
// is well defined: it fills in the number of windows the stream spans.
func RunWindowed(ex exec.Executor, stream event.Stream, windowLen, slide int64) (metrics.RunStats, error) {
	stats, err := Run(ex, stream)
	if err != nil || len(stream) == 0 {
		return stats, err
	}
	firstWin := (stream[0].Time-windowLen)/slide + 1
	if firstWin < 0 {
		firstWin = 0
	}
	lastWin := stream[len(stream)-1].Time / slide
	if lastWin >= firstWin {
		stats.Windows = lastWin - firstWin + 1
	}
	return stats, nil
}
