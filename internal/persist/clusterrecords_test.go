package persist

import (
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
)

func testSlice() *exec.SystemSnapshot {
	return &exec.SystemSnapshot{Kind: exec.KindEngine, Engine: &exec.EngineSnapshot{
		Started:   true,
		LastTime:  1234,
		NextClose: 3,
		MaxWin:    7,
	}}
}

func TestAdoptRecordRoundTrip(t *testing.T) {
	rec := AdoptRecord{
		Op:       42,
		TargetWM: 9000,
		EmitFrom: 8000,
		Plan:     core.Plan{core.NewCandidate([]event.Type{1, 2}, []int{0, 1})},
		Slice:    testSlice(),
		Delta: []BatchRecord{
			{Events: []event.Event{{Time: 8100, Type: 1, Key: 5, Val: 2.5}}, Watermark: 8200},
			{Watermark: 9000},
		},
	}
	payload, err := EncodeAdoptRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAdoptRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != rec.Op || got.TargetWM != rec.TargetWM || got.EmitFrom != rec.EmitFrom {
		t.Fatalf("scalars differ: %+v", got)
	}
	if !got.Plan.Equal(rec.Plan) {
		t.Fatalf("plan differs: %v vs %v", got.Plan, rec.Plan)
	}
	if got.Slice == nil || got.Slice.Engine.LastTime != 1234 {
		t.Fatalf("slice differs: %+v", got.Slice)
	}
	if len(got.Delta) != 2 || got.Delta[0].Events[0].Time != 8100 || got.Delta[1].Watermark != 9000 {
		t.Fatalf("delta differs: %+v", got.Delta)
	}
	if _, err := DecodeAdoptRecord(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestExtractRecordRoundTrip(t *testing.T) {
	rec := ExtractRecord{Op: 7, Keys: []event.GroupKey{1, 5, 9}}
	got, err := DecodeExtractRecord(EncodeExtractRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != 7 || len(got.Keys) != 3 || got.Keys[2] != 9 {
		t.Fatalf("round trip differs: %+v", got)
	}
}

func TestExtractResponseRoundTrip(t *testing.T) {
	x := ExtractResponse{Watermark: 777, Groups: 3, Slice: testSlice()}
	body, err := EncodeExtractResponse(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExtractResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Watermark != 777 || got.Groups != 3 || got.Slice.Engine.MaxWin != 7 {
		t.Fatalf("round trip differs: %+v", got)
	}
}
