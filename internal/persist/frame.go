package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrFrameTooLarge wraps every frame-length-over-limit error, so
// callers can map it to their own oversize refusal (the streaming
// ingest handler's 413-equivalent ack) distinctly from corruption.
var ErrFrameTooLarge = errors.New("frame exceeds size limit")

// This file holds the CRC frame layer shared by the WAL and the binary
// ingest wire format (internal/server): every framed payload travels as
//
//	u32 LE body length | u32 LE CRC32-Castagnoli(body) | body
//
// so a torn or corrupted frame is detected by the same length+checksum
// discipline whether it sits in a log segment on disk or in flight on
// an ingest connection. Body interpretation (record type, sequence,
// payload) belongs to the caller.

// FrameHeaderLen is the fixed per-frame overhead in bytes.
const FrameHeaderLen = 8

// AppendFrame appends one complete frame (header + body) to dst.
func AppendFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, walCRC))
	return append(dst, body...)
}

// BeginFrame reserves a frame header in dst and returns the header's
// offset; append the body directly to the returned slice and seal it
// with EndFrame. The pair frames in place — no separate body buffer —
// which keeps high-rate encoders (the cluster forward path) on one
// pooled buffer.
func BeginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, make([]byte, FrameHeaderLen)...), start
}

// EndFrame fills in the header reserved by BeginFrame at start, framing
// everything appended to dst since.
func EndFrame(dst []byte, start int) []byte {
	body := dst[start+FrameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, walCRC))
	return dst
}

// NextFrame decodes the frame at the head of b, returning its body
// (aliasing b — copy before the buffer is reused) and the total frame
// size. n == 0 with a nil error means a clean end of input; a non-nil
// error means the bytes at the cursor do not form a complete valid
// frame within maxBody.
func NextFrame(b []byte, maxBody int64) (body []byte, n int64, err error) {
	if len(b) == 0 {
		return nil, 0, nil
	}
	if len(b) < FrameHeaderLen {
		return nil, 0, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if int64(bodyLen) > maxBody {
		return nil, 0, fmt.Errorf("frame length %d exceeds limit %d: %w", bodyLen, maxBody, ErrFrameTooLarge)
	}
	if uint64(len(b)) < FrameHeaderLen+uint64(bodyLen) {
		return nil, 0, fmt.Errorf("short frame body (%d of %d bytes)", len(b)-FrameHeaderLen, bodyLen)
	}
	body = b[FrameHeaderLen : FrameHeaderLen+bodyLen]
	if crc32.Checksum(body, walCRC) != crc {
		return nil, 0, fmt.Errorf("frame crc mismatch")
	}
	return body, FrameHeaderLen + int64(bodyLen), nil
}

// ReadFrame reads one complete frame from r, reusing buf's capacity
// when it suffices, and returns the body (aliasing the returned
// buffer). io.EOF at a frame boundary is a clean end of stream; an EOF
// inside a frame surfaces as io.ErrUnexpectedEOF — the caller can tell
// a closed connection from a torn frame.
func ReadFrame(r io.Reader, maxBody int64, buf []byte) (body, newBuf []byte, err error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("torn frame header: %w", err)
		}
		return nil, buf, err
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if int64(bodyLen) > maxBody {
		return nil, buf, fmt.Errorf("frame length %d exceeds limit %d: %w", bodyLen, maxBody, ErrFrameTooLarge)
	}
	if int(bodyLen) > cap(buf) {
		buf = make([]byte, bodyLen)
	}
	buf = buf[:bodyLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("torn frame body: %w", io.ErrUnexpectedEOF)
		}
		return nil, buf, err
	}
	if crc32.Checksum(buf, walCRC) != crc {
		return nil, buf, fmt.Errorf("frame crc mismatch")
	}
	return buf, buf, nil
}
