// Package persist implements sharond's durability subsystem: an
// append-only segmented write-ahead log of accepted ingest batches and
// watermark punctuations (CRC-framed binary records, configurable fsync
// policy, segment rotation with truncation after checkpoints) and
// versioned checkpoint files serializing the engines' runtime state
// (exec.SystemSnapshot). Restart = load the newest valid checkpoint,
// replay the WAL tail, resume emitting — with no lost and no duplicated
// windows.
//
// All formats are explicit hand-rolled binary (no gob/JSON): varint
// integers, fixed 64-bit floats, length-prefixed byte strings, with a
// format version at every file header and CRC32 (Castagnoli) over every
// framed payload. Decoding is defensive — truncated or corrupted input
// surfaces as an error (or, for the WAL's final segment, as a cleanly
// ignored torn tail), never as garbage state.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends primitive values to a growing buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the encoder, retaining the buffer's capacity — the
// recycle hook for pooled encoders on high-rate paths (the cluster
// forward encoder, the streaming-ingest acks).
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
//
//sharon:hotpath
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
//
//sharon:hotpath
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a fixed 8-byte little-endian IEEE 754 double. Floats are
// fixed-width (not varint-packed) so NaN/Inf window aggregates (MIN/MAX
// identities) round-trip bit-exactly.
//
//sharon:hotpath
func (e *Encoder) Float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads primitive values from a buffer with a sticky error: the
// first malformed read poisons the decoder and every later read returns
// zero values, so decode functions can read unconditionally and check
// Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, nil if all reads were in bounds.
//
//sharon:hotpath
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
//
//sharon:hotpath
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint.
//
//sharon:hotpath
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		//sharon:allow hotpathalloc (error path: a truncated buffer ends the decode; never taken on valid input)
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zigzag) varint.
//
//sharon:hotpath
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		//sharon:allow hotpathalloc (error path: a truncated buffer ends the decode; never taken on valid input)
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool byte %d", b)
		return false
	}
	return b == 1
}

// Float reads a fixed 8-byte little-endian double.
//
//sharon:hotpath
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		//sharon:allow hotpathalloc (error path: a truncated buffer ends the decode; never taken on valid input)
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Len reads a length prefix and bounds-checks it against the remaining
// input, so a corrupted length cannot drive a huge allocation.
func (d *Decoder) Len() int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.Remaining()) {
		d.fail("length %d exceeds %d remaining bytes", v, d.Remaining())
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte string (copied out of the buffer).
func (d *Decoder) Blob() []byte {
	n := d.Len()
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}
