package persist

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
)

// Cluster hand-off records: the per-group-range slice of a checkpoint
// plus the replay delta that moves a consistent-hash range between
// sharond workers. AdoptRecord doubles as the /cluster/adopt HTTP body
// and the RecAdopt WAL payload — the worker logs exactly what it was
// sent, so crash recovery re-applies the graft bit-for-bit.

// SliceSnapshotGroups cuts the groups selected by keep out of a full
// system snapshot (typically a checkpoint's State) into an engine-kind
// slice snapshot — the per-group-range checkpoint slicing the cluster
// rebalancer ships between workers.
func SliceSnapshotGroups(s *exec.SystemSnapshot, keep func(event.GroupKey) bool) (*exec.SystemSnapshot, error) {
	es, err := exec.SliceGroups(s, keep)
	if err != nil {
		return nil, err
	}
	return &exec.SystemSnapshot{Kind: exec.KindEngine, Engine: es}, nil
}

// AdoptRecord is one cluster hand-off into a worker: graft Slice
// (consistent at its recorded stream position), replay Delta on top of
// it, align at TargetWM, and emit only the regenerated results for
// windows ending after EmitFrom (everything at or before it was already
// delivered downstream by the previous owner).
type AdoptRecord struct {
	// Op is a router-assigned nonce echoed in the worker's "adopted"
	// SSE marker, so the router can match completion to request.
	Op int64
	// TargetWM is the stream watermark the graft must be aligned at
	// when it completes (the router's position at the rebalance barrier).
	TargetWM int64
	// EmitFrom suppresses regenerated results for windows ending at or
	// before it: the previous owner already delivered those.
	EmitFrom int64
	// Plan is the sharing plan the slice's group structure was built
	// under; the adopting worker refuses a mismatch with its own plan
	// (the graft would not line up with its aggregator layout).
	Plan core.Plan
	// Slice is the engine-kind group slice (may hold zero groups when
	// the range's state lives entirely in Delta).
	Slice *exec.SystemSnapshot
	// Delta are the replay steps (already filtered to the moved range)
	// that carry the slice from its position to TargetWM.
	Delta []BatchRecord
}

// EncodeAdoptRecord renders an adopt record payload.
func EncodeAdoptRecord(a AdoptRecord) ([]byte, error) {
	e := &Encoder{}
	e.Varint(a.Op)
	e.Varint(a.TargetWM)
	e.Varint(a.EmitFrom)
	EncodePlan(e, a.Plan)
	e.Bool(a.Slice != nil)
	if a.Slice != nil {
		if err := EncodeSystemSnapshot(e, a.Slice); err != nil {
			return nil, err
		}
	}
	e.Uvarint(uint64(len(a.Delta)))
	for _, b := range a.Delta {
		e.Blob(EncodeBatchRecord(b))
	}
	return e.Bytes(), nil
}

// DecodeAdoptRecord parses an adopt record payload.
func DecodeAdoptRecord(payload []byte) (AdoptRecord, error) {
	d := NewDecoder(payload)
	a := AdoptRecord{
		Op:       d.Varint(),
		TargetWM: d.Varint(),
		EmitFrom: d.Varint(),
	}
	a.Plan = DecodePlan(d)
	if d.Bool() && d.Err() == nil {
		s, err := DecodeSystemSnapshot(d)
		if err != nil {
			return AdoptRecord{}, err
		}
		a.Slice = s
	}
	n := d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		b, err := DecodeBatchRecord(d.Blob())
		if err != nil {
			return AdoptRecord{}, err
		}
		a.Delta = append(a.Delta, b)
	}
	if d.Err() != nil {
		return AdoptRecord{}, d.Err()
	}
	if d.Remaining() != 0 {
		return AdoptRecord{}, fmt.Errorf("persist: %d trailing bytes in adopt record", d.Remaining())
	}
	return a, nil
}

// ExtractRecord is one cluster hand-off out of a worker: the group keys
// that were removed after their slice was shipped to the new owner.
type ExtractRecord struct {
	Op   int64
	Keys []event.GroupKey
}

// EncodeExtractRecord renders an extract record payload.
func EncodeExtractRecord(x ExtractRecord) []byte {
	e := &Encoder{}
	e.Varint(x.Op)
	e.Uvarint(uint64(len(x.Keys)))
	for _, k := range x.Keys {
		e.Varint(int64(k))
	}
	return e.Bytes()
}

// DecodeExtractRecord parses an extract record payload.
func DecodeExtractRecord(payload []byte) (ExtractRecord, error) {
	d := NewDecoder(payload)
	x := ExtractRecord{Op: d.Varint()}
	n := d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		x.Keys = append(x.Keys, event.GroupKey(d.Varint()))
	}
	if d.Err() != nil {
		return ExtractRecord{}, d.Err()
	}
	if d.Remaining() != 0 {
		return ExtractRecord{}, fmt.Errorf("persist: %d trailing bytes in extract record", d.Remaining())
	}
	return x, nil
}

// ExtractResponse is the /cluster/extract HTTP response body: the
// sliced groups and the watermark they are consistent at.
type ExtractResponse struct {
	Watermark int64
	Groups    int64
	Slice     *exec.SystemSnapshot
}

// EncodeExtractResponse renders an extract response body.
func EncodeExtractResponse(x ExtractResponse) ([]byte, error) {
	e := &Encoder{}
	e.Varint(x.Watermark)
	e.Varint(x.Groups)
	e.Bool(x.Slice != nil)
	if x.Slice != nil {
		if err := EncodeSystemSnapshot(e, x.Slice); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeExtractResponse parses an extract response body.
func DecodeExtractResponse(payload []byte) (ExtractResponse, error) {
	d := NewDecoder(payload)
	x := ExtractResponse{Watermark: d.Varint(), Groups: d.Varint()}
	if d.Bool() && d.Err() == nil {
		s, err := DecodeSystemSnapshot(d)
		if err != nil {
			return ExtractResponse{}, err
		}
		x.Slice = s
	}
	if d.Err() != nil {
		return ExtractResponse{}, d.Err()
	}
	if d.Remaining() != 0 {
		return ExtractResponse{}, fmt.Errorf("persist: %d trailing bytes in extract response", d.Remaining())
	}
	return x, nil
}
