package persist

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
)

// BatchRecord is the payload of a RecBatch WAL record: one applied pump
// step — the late-filtered, strictly time-ordered events that were fed
// to the engine, plus the effective (post-clamp) watermark (-1 when the
// step carried none). Replaying batch records through the same step
// logic reproduces the engine's state and emission exactly.
type BatchRecord struct {
	Events    []event.Event
	Watermark int64
}

// EncodeBatchRecord renders a batch record payload. Event times are
// delta-encoded against their predecessor (strictly ascending, so deltas
// are small positive varints).
func EncodeBatchRecord(b BatchRecord) []byte {
	e := &Encoder{}
	e.Varint(b.Watermark)
	e.Uvarint(uint64(len(b.Events)))
	prev := int64(0)
	for _, ev := range b.Events {
		e.Uvarint(uint64(ev.Time - prev))
		prev = ev.Time
		e.Uvarint(uint64(ev.Type))
		e.Varint(int64(ev.Key))
		e.Float(ev.Val)
	}
	return e.Bytes()
}

// DecodeBatchRecord parses a batch record payload.
func DecodeBatchRecord(payload []byte) (BatchRecord, error) {
	d := NewDecoder(payload)
	b := BatchRecord{Watermark: d.Varint()}
	n := d.Len()
	prev := int64(0)
	for i := 0; i < n && d.Err() == nil; i++ {
		ev := event.Event{
			Time: prev + int64(d.Uvarint()),
			Type: event.Type(d.Uvarint()),
			Key:  event.GroupKey(d.Varint()),
			Val:  d.Float(),
		}
		prev = ev.Time
		b.Events = append(b.Events, ev)
	}
	if d.Err() != nil {
		return BatchRecord{}, d.Err()
	}
	if d.Remaining() != 0 {
		return BatchRecord{}, fmt.Errorf("persist: %d trailing bytes in batch record", d.Remaining())
	}
	return b, nil
}

// CtlRecord is the payload of a RecCtl WAL record: one applied live
// workload change, with everything the original application derived
// non-reproducibly — the IDs assigned to added queries and the plan the
// optimizer chose — recorded so replay re-applies the change without
// re-running the optimizer.
type CtlRecord struct {
	Add         []string
	Remove      []int
	AssignedIDs []int
	Plan        core.Plan
}

// EncodeCtlRecord renders a control record payload.
func EncodeCtlRecord(c CtlRecord) []byte {
	e := &Encoder{}
	e.Uvarint(uint64(len(c.Add)))
	for _, s := range c.Add {
		e.String(s)
	}
	e.Uvarint(uint64(len(c.Remove)))
	for _, id := range c.Remove {
		e.Varint(int64(id))
	}
	e.Uvarint(uint64(len(c.AssignedIDs)))
	for _, id := range c.AssignedIDs {
		e.Varint(int64(id))
	}
	EncodePlan(e, c.Plan)
	return e.Bytes()
}

// DecodeCtlRecord parses a control record payload.
func DecodeCtlRecord(payload []byte) (CtlRecord, error) {
	d := NewDecoder(payload)
	var c CtlRecord
	na := d.Len()
	for i := 0; i < na && d.Err() == nil; i++ {
		c.Add = append(c.Add, d.String())
	}
	nr := d.Len()
	for i := 0; i < nr && d.Err() == nil; i++ {
		c.Remove = append(c.Remove, int(d.Varint()))
	}
	ni := d.Len()
	for i := 0; i < ni && d.Err() == nil; i++ {
		c.AssignedIDs = append(c.AssignedIDs, int(d.Varint()))
	}
	c.Plan = DecodePlan(d)
	if d.Err() != nil {
		return CtlRecord{}, d.Err()
	}
	if d.Remaining() != 0 {
		return CtlRecord{}, fmt.Errorf("persist: %d trailing bytes in ctl record", d.Remaining())
	}
	return c, nil
}
