package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
)

// CheckpointVersion is the checkpoint file format version.
const CheckpointVersion = 1

// checkpointMagic heads every checkpoint file.
var checkpointMagic = []byte("SHRNCKP1")

// QueryEntry is one registered query in a checkpoint: its stable ID and
// source text (recompiled on load against the recorded registry).
type QueryEntry struct {
	ID   int
	Text string
}

// RingEntry is one retained emission: the global sequence number and the
// encoded wire payload, exactly as it was pushed to subscribers.
type RingEntry struct {
	Seq     int64
	Payload []byte
}

// Checkpoint is a consistent cut of a sharond server: everything needed
// to rebuild the serving state at WAL position WALSeq. Replaying WAL
// records with seq > WALSeq on top of State reproduces the uninterrupted
// run — emission sequence numbers included, which is the resumption
// cursor that keeps a resumed subscription gap- and duplicate-free.
type Checkpoint struct {
	// CreatedUnixNano stamps the checkpoint (informational).
	CreatedUnixNano int64
	// WALSeq is the sequence number of the last WAL record applied
	// before State was captured (-1 when none).
	WALSeq int64
	// Watermark is the stream watermark at the cut.
	Watermark int64
	// NextEmitSeq is the next global emission sequence number.
	NextEmitSeq int64
	// Emitted/EventsIngested/Batches carry the serving counters across
	// restarts (metrics continuity).
	Emitted        int64
	EventsIngested int64
	Batches        int64
	// NextQueryID numbers the next live-registered query.
	NextQueryID int
	// Parallelism is the engine worker count the snapshot was taken
	// under; restore requires the same setting.
	Parallelism int
	// Dynamic records whether the engine is a DynamicSystem.
	Dynamic bool
	// RegistryNames are the interned type names in interning order; the
	// WAL encodes events by interned Type, so the order is load-bearing.
	RegistryNames []string
	// Queries are the registered queries (including live-registered
	// ones) in workload order.
	Queries []QueryEntry
	// Plan is the sharing plan in effect for uniform non-dynamic
	// workloads (dynamic systems carry their plan inside State; nil for
	// partitioned workloads, which re-plan deterministically per segment).
	Plan core.Plan
	// TypeCounts/CountFrom are the server's measured-rate accumulators.
	TypeCounts map[event.Type]float64
	CountFrom  int64
	// Ring is the bounded tail of recent emissions (seq ascending) that
	// reconnecting subscribers replay from.
	Ring []RingEntry
	// State is the engine snapshot.
	State *exec.SystemSnapshot
}

// Encode renders the checkpoint body (excluding the file framing).
func (c *Checkpoint) Encode() ([]byte, error) {
	e := &Encoder{}
	e.Uvarint(CheckpointVersion)
	e.Varint(c.CreatedUnixNano)
	e.Varint(c.WALSeq)
	e.Varint(c.Watermark)
	e.Varint(c.NextEmitSeq)
	e.Varint(c.Emitted)
	e.Varint(c.EventsIngested)
	e.Varint(c.Batches)
	e.Varint(int64(c.NextQueryID))
	e.Varint(int64(c.Parallelism))
	e.Bool(c.Dynamic)
	e.Uvarint(uint64(len(c.RegistryNames)))
	for _, n := range c.RegistryNames {
		e.String(n)
	}
	e.Uvarint(uint64(len(c.Queries)))
	for _, q := range c.Queries {
		e.Varint(int64(q.ID))
		e.String(q.Text)
	}
	EncodePlan(e, c.Plan)
	encodeCounts(e, c.TypeCounts)
	e.Varint(c.CountFrom)
	e.Uvarint(uint64(len(c.Ring)))
	for _, r := range c.Ring {
		e.Varint(r.Seq)
		e.Blob(r.Payload)
	}
	e.Bool(c.State != nil)
	if c.State != nil {
		if err := EncodeSystemSnapshot(e, c.State); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeCheckpoint parses a checkpoint body.
func DecodeCheckpoint(body []byte) (*Checkpoint, error) {
	d := NewDecoder(body)
	if v := d.Uvarint(); v != CheckpointVersion {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("persist: checkpoint version %d, this build reads %d", v, CheckpointVersion)
	}
	c := &Checkpoint{
		CreatedUnixNano: d.Varint(),
		WALSeq:          d.Varint(),
		Watermark:       d.Varint(),
		NextEmitSeq:     d.Varint(),
		Emitted:         d.Varint(),
		EventsIngested:  d.Varint(),
		Batches:         d.Varint(),
		NextQueryID:     int(d.Varint()),
		Parallelism:     int(d.Varint()),
		Dynamic:         d.Bool(),
	}
	nn := d.Len()
	for i := 0; i < nn && d.Err() == nil; i++ {
		c.RegistryNames = append(c.RegistryNames, d.String())
	}
	nq := d.Len()
	for i := 0; i < nq && d.Err() == nil; i++ {
		c.Queries = append(c.Queries, QueryEntry{ID: int(d.Varint()), Text: d.String()})
	}
	c.Plan = DecodePlan(d)
	c.TypeCounts = decodeCounts(d)
	c.CountFrom = d.Varint()
	nr := d.Len()
	for i := 0; i < nr && d.Err() == nil; i++ {
		c.Ring = append(c.Ring, RingEntry{Seq: d.Varint(), Payload: d.Blob()})
	}
	if d.Bool() && d.Err() == nil {
		st, err := DecodeSystemSnapshot(d)
		if err != nil {
			return nil, err
		}
		c.State = st
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return c, nil
}

// checkpointName renders the file name for a checkpoint at WAL position
// seq; names sort in WAL order.
func checkpointName(walSeq int64) string {
	return fmt.Sprintf("checkpoint-%016d.ckpt", walSeq+1)
}

// WriteCheckpoint atomically writes c into dir (temp file, fsync,
// rename, directory sync) and prunes all but the two newest checkpoint
// files. It returns the written path and the encoded body size.
func WriteCheckpoint(dir string, c *Checkpoint) (string, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	body, err := c.Encode()
	if err != nil {
		return "", 0, err
	}
	frame := make([]byte, 0, len(checkpointMagic)+16+len(body))
	frame = append(frame, checkpointMagic...)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(body, walCRC))
	frame = append(frame, body...)

	path := filepath.Join(dir, checkpointName(c.WALSeq))
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return "", 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", 0, err
	}
	syncDir(dir)
	pruneCheckpoints(dir, 2)
	return path, int64(len(body)), nil
}

// listCheckpoints returns checkpoint paths sorted newest-first.
func listCheckpoints(dir string) []string {
	names, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

// pruneCheckpoints removes all but the keep newest checkpoint files.
func pruneCheckpoints(dir string, keep int) {
	names := listCheckpoints(dir)
	for i := keep; i < len(names); i++ {
		_ = os.Remove(names[i])
	}
}

// ReadCheckpoint loads and validates one checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr := len(checkpointMagic) + 12
	if len(data) < hdr || string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return nil, fmt.Errorf("persist: %s: not a checkpoint file", path)
	}
	bodyLen := binary.LittleEndian.Uint64(data[len(checkpointMagic):])
	crc := binary.LittleEndian.Uint32(data[len(checkpointMagic)+8:])
	if uint64(len(data)-hdr) < bodyLen {
		return nil, fmt.Errorf("persist: %s: truncated (%d of %d body bytes)", path, len(data)-hdr, bodyLen)
	}
	body := data[hdr : hdr+int(bodyLen)]
	if crc32.Checksum(body, walCRC) != crc {
		return nil, fmt.Errorf("persist: %s: crc mismatch", path)
	}
	c, err := DecodeCheckpoint(body)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	return c, nil
}

// LoadLatestCheckpoint returns the newest checkpoint in dir that loads
// and validates cleanly, skipping damaged ones (a crash mid-write leaves
// only a temp file, but defense in depth costs little), or nil when none
// exists.
func LoadLatestCheckpoint(dir string, logf func(format string, args ...any)) (*Checkpoint, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var firstErr error
	for _, path := range listCheckpoints(dir) {
		c, err := ReadCheckpoint(path)
		if err != nil {
			logf("checkpoint %s unreadable, trying older: %v", filepath.Base(path), err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return c, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("persist: no valid checkpoint in %s: %w", dir, firstErr)
	}
	return nil, nil
}

// CheckpointSeqFromName parses the WAL position out of a checkpoint file
// name (used by tooling/tests).
func CheckpointSeqFromName(path string) (int64, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "checkpoint-") || !strings.HasSuffix(base, ".ckpt") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(base, "checkpoint-"), ".ckpt"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n - 1, true
}
