package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/query"
)

// buildEngineState feeds a parameterized pseudo-random stream into a
// shared-plan engine and returns its snapshot plus the inputs needed to
// rebuild an equivalent engine.
func buildEngineState(tb testing.TB, events int, groups int, cut byte) (*exec.SystemSnapshot, query.Workload, core.Plan) {
	tb.Helper()
	reg := event.NewRegistry()
	w := query.Workload{
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WHERE [k] WITHIN 4s SLIDE 1s", reg),
		query.MustParse("RETURN SUM(D.val) PATTERN SEQ(C, D) WHERE [k] WITHIN 4s SLIDE 1s", reg),
		query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 4s SLIDE 1s", reg),
	}
	w.Renumber()
	types := []event.Type{reg.Lookup("A"), reg.Lookup("B"), reg.Lookup("C"), reg.Lookup("D")}
	pat := query.Pattern{reg.Lookup("C"), reg.Lookup("D")}
	plan := core.Plan{core.NewCandidate(pat, []int{0, 1})}
	en, err := exec.NewEngine(w, plan, exec.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	if groups < 1 {
		groups = 1
	}
	// An xorshift stream parameterized by the fuzz byte: irregular times,
	// type/group mixes, so snapshots carry rings, live STARTs, and stage
	// entries in varied shapes.
	x := uint64(cut)*2654435761 + 1
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	t := int64(0)
	for i := 0; i < events; i++ {
		t += 1 + int64(next()%5)
		e := event.Event{
			Time: t,
			Type: types[next()%uint64(len(types))],
			Key:  event.GroupKey(next() % uint64(groups)),
			Val:  float64(next()%13) + 0.5,
		}
		if err := en.Process(e); err != nil {
			tb.Fatal(err)
		}
	}
	return en.Snapshot(), w, plan
}

func encodeSnap(tb testing.TB, s *exec.SystemSnapshot) []byte {
	tb.Helper()
	e := &Encoder{}
	if err := EncodeSystemSnapshot(e, s); err != nil {
		tb.Fatal(err)
	}
	return e.Bytes()
}

// FuzzCheckpointRoundTrip is the durability core contract:
// decode(encode(state)) is bit-exact (re-encoding the decoded snapshot
// reproduces the same bytes), restoring the decoded snapshot into a
// fresh engine reproduces the same snapshot again, and corrupted or
// truncated checkpoint bodies are detected — never silently half-loaded.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(200, 3, byte(1), -1)
	f.Add(1000, 7, byte(42), 100)
	f.Add(50, 1, byte(0), 5)
	f.Fuzz(func(t *testing.T, events, groups int, seed byte, corruptAt int) {
		if events < 0 || events > 3000 || groups < 1 || groups > 32 {
			t.Skip()
		}
		snap, w, plan := buildEngineState(t, events, groups, seed)
		raw := encodeSnap(t, snap)

		// Bit-exact decode/encode round trip.
		dec, err := DecodeSystemSnapshot(NewDecoder(raw))
		if err != nil {
			t.Fatalf("decode valid snapshot: %v", err)
		}
		if got := encodeSnap(t, dec); !bytes.Equal(got, raw) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(got), len(raw))
		}

		// Restoring the decoded state reproduces the same snapshot.
		en2, err := exec.NewEngine(w, plan, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := en2.Restore(dec); err != nil {
			t.Fatalf("restore decoded snapshot: %v", err)
		}
		if got := encodeSnap(t, en2.Snapshot()); !bytes.Equal(got, raw) {
			t.Fatal("snapshot after restore differs from original")
		}

		// Damaged input must error, not half-load: truncations always;
		// a flipped byte is caught by the full checkpoint file framing's
		// CRC (exercised below via WriteCheckpoint/ReadCheckpoint).
		if corruptAt >= 0 && corruptAt < len(raw) {
			if _, err := DecodeSystemSnapshot(NewDecoder(raw[:corruptAt])); err == nil && corruptAt < len(raw) {
				t.Fatalf("truncation at %d of %d decoded cleanly", corruptAt, len(raw))
			}
			dir := t.TempDir()
			ck := &Checkpoint{WALSeq: 7, Watermark: 1234, NextEmitSeq: 9, State: snap,
				RegistryNames:   []string{"A", "B", "C", "D"},
				Queries:         []QueryEntry{{ID: 0, Text: "q0"}},
				CreatedUnixNano: time.Now().UnixNano()}
			path, _, err := WriteCheckpoint(dir, ck)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			at := len(checkpointMagic) + 12 + corruptAt
			if at < len(data) {
				data[at] ^= 0x20
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				if _, err := ReadCheckpoint(path); err == nil {
					t.Fatalf("flipped byte at body offset %d read cleanly", corruptAt)
				}
			}
		}
	})
}

// FuzzWALTail drives arbitrary damage into a WAL's final segment: Open
// must always succeed, replay must yield an exact prefix of the appended
// records, and the repaired log must accept appends.
func FuzzWALTail(f *testing.F) {
	f.Add(10, 100, byte(0x40))
	f.Add(3, 5, byte(0xFF))
	f.Add(25, 0, byte(0x01))
	f.Fuzz(func(t *testing.T, records, damageAt int, flip byte) {
		if records < 1 || records > 200 {
			t.Skip()
		}
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		recs := mkRecords(records)
		appendAll(t, w, recs)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if damageAt >= 0 && damageAt < len(data) && flip != 0 {
			data[damageAt] ^= flip
			data = data[:damageAt+1+(len(data)-damageAt-1)/2] // also shear the tail
			if err := os.WriteFile(segs[0], data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		w2, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("open over damaged tail: %v", err)
		}
		defer w2.Close()
		got := replayAll(t, w2, -1)
		if len(got) > len(recs) {
			t.Fatalf("replayed %d of %d records", len(got), len(recs))
		}
		for i, r := range got {
			if r.Seq != int64(i) {
				t.Fatalf("record %d has seq %d (not a prefix)", i, r.Seq)
			}
			b, err := DecodeBatchRecord(r.Payload)
			if err != nil {
				t.Fatalf("record %d payload corrupt: %v", i, err)
			}
			if b.Watermark != recs[i].Watermark || len(b.Events) != len(recs[i].Events) {
				t.Fatalf("record %d differs from what was appended", i)
			}
		}
		if w2.NextSeq() != int64(len(got)) {
			t.Fatalf("NextSeq %d after %d valid records", w2.NextSeq(), len(got))
		}
		if _, err := w2.Append(RecBatch, EncodeBatchRecord(recs[0])); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCheckpointFileRoundTrip covers the full checkpoint file path:
// atomic write, newest-first load, pruning, and field fidelity.
func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap, _, _ := buildEngineState(t, 400, 5, 9)
	ck := &Checkpoint{
		CreatedUnixNano: time.Now().UnixNano(),
		WALSeq:          41,
		Watermark:       98765,
		NextEmitSeq:     1234,
		Emitted:         1234,
		NextQueryID:     5,
		Parallelism:     1,
		RegistryNames:   []string{"A", "B", "C", "D"},
		Queries:         []QueryEntry{{0, "q0 text"}, {3, "q3 text"}},
		TypeCounts:      map[event.Type]float64{1: 10, 2: 20.5},
		CountFrom:       17,
		Ring:            []RingEntry{{Seq: 1230, Payload: []byte(`{"seq":1230}`)}, {Seq: 1231, Payload: []byte(`{"seq":1231}`)}},
		State:           snap,
	}
	if _, _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	// An older checkpoint gets pruned once two newer ones exist.
	old := *ck
	old.WALSeq = 7
	if _, _, err := WriteCheckpoint(dir, &old); err != nil {
		t.Fatal(err)
	}
	newer := *ck
	newer.WALSeq = 60
	if _, _, err := WriteCheckpoint(dir, &newer); err != nil {
		t.Fatal(err)
	}
	if names := listCheckpoints(dir); len(names) != 2 {
		t.Fatalf("%d checkpoints after pruning", len(names))
	}

	got, err := LoadLatestCheckpoint(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WALSeq != 60 || got.Watermark != ck.Watermark || got.NextEmitSeq != ck.NextEmitSeq ||
		got.NextQueryID != ck.NextQueryID || len(got.Queries) != 2 || got.Queries[1].Text != "q3 text" ||
		len(got.RegistryNames) != 4 || got.TypeCounts[2] != 20.5 || got.CountFrom != 17 ||
		len(got.Ring) != 2 || got.Ring[1].Seq != 1231 || string(got.Ring[0].Payload) != `{"seq":1230}` {
		t.Fatalf("loaded checkpoint differs: %+v", got)
	}
	a := encodeSnap(t, ck.State)
	b := encodeSnap(t, got.State)
	if !bytes.Equal(a, b) {
		t.Fatal("engine state differs across checkpoint file round trip")
	}

	// A corrupted newest checkpoint falls back to the older one.
	names := listCheckpoints(dir)
	data, _ := os.ReadFile(names[0])
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadLatestCheckpoint(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.WALSeq != 41 {
		t.Fatalf("fallback loaded WALSeq %d, want 41", got2.WALSeq)
	}

	// Empty dir: no checkpoint, no error.
	none, err := LoadLatestCheckpoint(t.TempDir(), nil)
	if err != nil || none != nil {
		t.Fatalf("empty dir: %v, %v", none, err)
	}
}
