package persist

import (
	"fmt"
	"sort"

	"github.com/sharon-project/sharon/internal/agg"
	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/query"
)

// SnapshotVersion is the executor-state format version; bumped on every
// incompatible change to the encoding below. Decoders reject unknown
// versions instead of guessing.
//
// v2: dynamic snapshots carry the adaptive share/split runtime state
// (transition counters, retired prune count, burst detector baseline
// and state).
const SnapshotVersion = 2

// snapshot kind tags (one byte each; exec kinds are strings for
// in-memory clarity, bytes on disk).
var kindTags = map[string]byte{
	exec.KindEngine:      1,
	exec.KindParallel:    2,
	exec.KindPartitioned: 3,
	exec.KindDynamic:     4,
	exec.KindSegments:    5,
}

func kindOfTag(tag byte) (string, bool) {
	for k, t := range kindTags {
		if t == tag {
			return k, true
		}
	}
	return "", false
}

// EncodeSystemSnapshot appends the versioned binary form of s.
func EncodeSystemSnapshot(e *Encoder, s *exec.SystemSnapshot) error {
	e.Uvarint(SnapshotVersion)
	return encodeSystem(e, s)
}

// DecodeSystemSnapshot reads a snapshot written by EncodeSystemSnapshot.
func DecodeSystemSnapshot(d *Decoder) (*exec.SystemSnapshot, error) {
	if v := d.Uvarint(); v != SnapshotVersion {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", v, SnapshotVersion)
	}
	s := decodeSystem(d)
	if d.Err() != nil {
		return nil, d.Err()
	}
	return s, nil
}

func encodeSystem(e *Encoder, s *exec.SystemSnapshot) error {
	tag, ok := kindTags[s.Kind]
	if !ok {
		return fmt.Errorf("persist: unknown snapshot kind %q", s.Kind)
	}
	e.buf = append(e.buf, tag)
	switch s.Kind {
	case exec.KindEngine:
		encodeEngine(e, s.Engine)
	case exec.KindParallel:
		e.Uvarint(uint64(len(s.Parallel.Shards)))
		e.Bool(s.Parallel.Started)
		e.Varint(s.Parallel.Last)
		e.Varint(s.Parallel.ResultCount)
		for _, sh := range s.Parallel.Shards {
			if err := encodeSystem(e, sh); err != nil {
				return err
			}
		}
	case exec.KindPartitioned, exec.KindSegments:
		p := s.Partitioned
		e.Uvarint(uint64(len(p.Segments)))
		e.Bool(p.Started)
		e.Varint(p.Last)
		e.Varint(p.ResultCount)
		for _, en := range p.Segments {
			encodeEngine(e, en)
		}
	case exec.KindDynamic:
		dn := s.Dynamic
		e.Bool(dn.Started)
		e.Varint(dn.Last)
		e.Varint(dn.ResultCount)
		e.Varint(int64(dn.Migrations))
		EncodePlan(e, dn.Plan)
		encodeRates(e, dn.Rates)
		encodeCounts(e, dn.Counts)
		e.Varint(dn.CountFrom)
		e.Varint(dn.NextCheck)
		e.Varint(dn.Boundary)
		e.Varint(dn.CurrentFrom)
		encodeEngine(e, dn.Current)
		e.Bool(dn.Draining != nil)
		if dn.Draining != nil {
			EncodePlan(e, dn.DrainPlan)
			e.Varint(dn.DrainFrom)
			encodeEngine(e, dn.Draining)
		}
		e.Varint(int64(dn.ShareTransitions))
		e.Varint(int64(dn.SplitTransitions))
		e.Varint(dn.PrunedRetired)
		e.Float(dn.BurstBaseline)
		e.Varint(int64(dn.BurstState))
	}
	return nil
}

func decodeSystem(d *Decoder) *exec.SystemSnapshot {
	if d.Err() != nil {
		return nil
	}
	if d.Remaining() < 1 {
		d.fail("truncated snapshot kind")
		return nil
	}
	tag := d.buf[d.off]
	d.off++
	kind, ok := kindOfTag(tag)
	if !ok {
		d.fail("unknown snapshot kind tag %d", tag)
		return nil
	}
	s := &exec.SystemSnapshot{Kind: kind}
	switch kind {
	case exec.KindEngine:
		s.Engine = decodeEngine(d)
	case exec.KindParallel:
		n := d.Len()
		p := &exec.ParallelSnapshot{
			Started:     d.Bool(),
			Last:        d.Varint(),
			ResultCount: d.Varint(),
		}
		for i := 0; i < n && d.Err() == nil; i++ {
			p.Shards = append(p.Shards, decodeSystem(d))
		}
		s.Parallel = p
	case exec.KindPartitioned, exec.KindSegments:
		n := d.Len()
		p := &exec.PartitionedSnapshot{
			Started:     d.Bool(),
			Last:        d.Varint(),
			ResultCount: d.Varint(),
		}
		for i := 0; i < n && d.Err() == nil; i++ {
			p.Segments = append(p.Segments, decodeEngine(d))
		}
		s.Partitioned = p
	case exec.KindDynamic:
		dn := &exec.DynamicSnapshot{
			Started:     d.Bool(),
			Last:        d.Varint(),
			ResultCount: d.Varint(),
			Migrations:  int(d.Varint()),
			Plan:        DecodePlan(d),
			Rates:       decodeRates(d),
			Counts:      decodeCounts(d),
			CountFrom:   d.Varint(),
			NextCheck:   d.Varint(),
			Boundary:    d.Varint(),
			CurrentFrom: d.Varint(),
			Current:     decodeEngine(d),
		}
		if d.Bool() {
			dn.DrainPlan = DecodePlan(d)
			dn.DrainFrom = d.Varint()
			dn.Draining = decodeEngine(d)
		}
		dn.ShareTransitions = int(d.Varint())
		dn.SplitTransitions = int(d.Varint())
		dn.PrunedRetired = d.Varint()
		dn.BurstBaseline = d.Float()
		dn.BurstState = int(d.Varint())
		s.Dynamic = dn
	}
	return s
}

func encodeEngine(e *Encoder, en *exec.EngineSnapshot) {
	e.Bool(en.Started)
	e.Varint(en.LastTime)
	e.Varint(en.NextClose)
	e.Varint(en.MaxWin)
	e.Varint(en.PeakLive)
	e.Varint(en.ResultCount)
	e.Uvarint(uint64(len(en.Groups)))
	for i := range en.Groups {
		g := &en.Groups[i]
		e.Varint(int64(g.Key))
		e.Uvarint(uint64(len(g.Nodes)))
		for _, n := range g.Nodes {
			encodeAgg(e, n)
		}
		e.Uvarint(uint64(len(g.Stages)))
		for _, st := range g.Stages {
			e.Uvarint(uint64(st.Chain))
			e.Uvarint(uint64(st.Stage))
			e.Uvarint(uint64(len(st.Windows)))
			for _, w := range st.Windows {
				e.Varint(w.Win)
				e.Uvarint(uint64(len(w.Entries)))
				for _, en := range w.Entries {
					e.Varint(en.RecID)
					encodeState(e, en.Up)
				}
			}
		}
	}
}

func decodeEngine(d *Decoder) *exec.EngineSnapshot {
	en := &exec.EngineSnapshot{
		Started:     d.Bool(),
		LastTime:    d.Varint(),
		NextClose:   d.Varint(),
		MaxWin:      d.Varint(),
		PeakLive:    d.Varint(),
		ResultCount: d.Varint(),
	}
	ng := d.Len()
	for i := 0; i < ng && d.Err() == nil; i++ {
		g := exec.GroupSnapshot{Key: event.GroupKey(d.Varint())}
		nn := d.Len()
		for j := 0; j < nn && d.Err() == nil; j++ {
			g.Nodes = append(g.Nodes, decodeAgg(d))
		}
		ns := d.Len()
		for j := 0; j < ns && d.Err() == nil; j++ {
			st := exec.StageSnapshot{Chain: int(d.Uvarint()), Stage: int(d.Uvarint())}
			nw := d.Len()
			for k := 0; k < nw && d.Err() == nil; k++ {
				w := exec.StageWindowSnapshot{Win: d.Varint()}
				ne := d.Len()
				for l := 0; l < ne && d.Err() == nil; l++ {
					w.Entries = append(w.Entries, exec.SnapEntrySnapshot{RecID: d.Varint(), Up: decodeState(d)})
				}
				st.Windows = append(st.Windows, w)
			}
			g.Stages = append(g.Stages, st)
		}
		en.Groups = append(en.Groups, g)
	}
	return en
}

func encodeAgg(e *Encoder, a agg.Snapshot) {
	e.Bool(a.Started)
	e.Varint(a.LastTime)
	e.Varint(a.NextClose)
	e.Varint(a.MaxWin)
	e.Varint(a.NextID)
	e.Uvarint(uint64(len(a.Windows)))
	for _, s := range a.Windows {
		encodeState(e, s)
	}
	e.Uvarint(uint64(len(a.Starts)))
	for _, s := range a.Starts {
		e.Varint(s.Time)
		e.Varint(s.ID)
		e.Uvarint(uint64(len(s.Prefix)))
		for _, p := range s.Prefix {
			encodeState(e, p)
		}
	}
}

func decodeAgg(d *Decoder) agg.Snapshot {
	a := agg.Snapshot{
		Started:   d.Bool(),
		LastTime:  d.Varint(),
		NextClose: d.Varint(),
		MaxWin:    d.Varint(),
		NextID:    d.Varint(),
	}
	nw := d.Len()
	for i := 0; i < nw && d.Err() == nil; i++ {
		a.Windows = append(a.Windows, decodeState(d))
	}
	ns := d.Len()
	for i := 0; i < ns && d.Err() == nil; i++ {
		s := agg.StartSnapshot{Time: d.Varint(), ID: d.Varint()}
		np := d.Len()
		for j := 0; j < np && d.Err() == nil; j++ {
			s.Prefix = append(s.Prefix, decodeState(d))
		}
		a.Starts = append(a.Starts, s)
	}
	return a
}

func encodeState(e *Encoder, s agg.State) {
	e.Float(s.Count)
	e.Float(s.CountE)
	e.Float(s.Sum)
	e.Float(s.Min)
	e.Float(s.Max)
}

func decodeState(d *Decoder) agg.State {
	return agg.State{Count: d.Float(), CountE: d.Float(), Sum: d.Float(), Min: d.Float(), Max: d.Float()}
}

// EncodePlan appends a sharing plan (candidate patterns + sharing query
// IDs).
func EncodePlan(e *Encoder, p core.Plan) {
	e.Uvarint(uint64(len(p)))
	for _, c := range p {
		e.Uvarint(uint64(len(c.Pattern)))
		for _, t := range c.Pattern {
			e.Uvarint(uint64(t))
		}
		e.Uvarint(uint64(len(c.Queries)))
		for _, q := range c.Queries {
			e.Varint(int64(q))
		}
	}
}

// DecodePlan reads a plan written by EncodePlan (nil for an empty plan).
func DecodePlan(d *Decoder) core.Plan {
	n := d.Len()
	if n == 0 || d.Err() != nil {
		return nil
	}
	p := make(core.Plan, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		np := d.Len()
		pat := make(query.Pattern, 0, np)
		for j := 0; j < np && d.Err() == nil; j++ {
			pat = append(pat, event.Type(d.Uvarint()))
		}
		nq := d.Len()
		qs := make([]int, 0, nq)
		for j := 0; j < nq && d.Err() == nil; j++ {
			qs = append(qs, int(d.Varint()))
		}
		p = append(p, core.NewCandidate(pat, qs))
	}
	return p
}

// encodeRates/encodeCounts write type-keyed float maps with sorted keys
// so equal states encode to equal bytes (the fuzz round-trip contract).
func encodeRates(e *Encoder, r core.Rates) {
	encodeTypeFloats(e, map[event.Type]float64(r), r == nil)
}

func decodeRates(d *Decoder) core.Rates {
	m, isNil := decodeTypeFloats(d)
	if isNil {
		return nil
	}
	return core.Rates(m)
}

func encodeCounts(e *Encoder, c map[event.Type]float64) {
	encodeTypeFloats(e, c, c == nil)
}

func decodeCounts(d *Decoder) map[event.Type]float64 {
	m, isNil := decodeTypeFloats(d)
	if isNil {
		return nil
	}
	return m
}

func encodeTypeFloats(e *Encoder, m map[event.Type]float64, isNil bool) {
	e.Bool(isNil)
	if isNil {
		return
	}
	keys := make([]event.Type, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Uvarint(uint64(k))
		e.Float(m[k])
	}
}

func decodeTypeFloats(d *Decoder) (map[event.Type]float64, bool) {
	if d.Bool() {
		return nil, true
	}
	n := d.Len()
	m := make(map[event.Type]float64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := event.Type(d.Uvarint())
		m[k] = d.Float()
	}
	return m, false
}
