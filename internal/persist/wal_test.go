package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

func mkRecords(n int) []BatchRecord {
	out := make([]BatchRecord, n)
	t := int64(0)
	for i := range out {
		var evs []event.Event
		for j := 0; j < i%5; j++ {
			t++
			evs = append(evs, event.Event{Time: t, Type: event.Type(j%3 + 1), Key: event.GroupKey(j), Val: float64(i + j)})
		}
		out[i] = BatchRecord{Events: evs, Watermark: int64(i*10 - 1)}
	}
	return out
}

func appendAll(t *testing.T, w *WAL, recs []BatchRecord) {
	t.Helper()
	for i, r := range recs {
		seq, err := w.Append(RecBatch, EncodeBatchRecord(r))
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
}

func replayAll(t *testing.T, w *WAL, after int64) []Record {
	t.Helper()
	var got []Record
	if err := w.Replay(after, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	recs := mkRecords(20)
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != int64(len(recs)) {
		t.Fatalf("reopened NextSeq = %d, want %d", w2.NextSeq(), len(recs))
	}
	got := replayAll(t, w2, -1)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Seq != int64(i) || r.Type != RecBatch {
			t.Fatalf("record %d: seq %d type %d", i, r.Seq, r.Type)
		}
		b, err := DecodeBatchRecord(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Events) != len(recs[i].Events) || b.Watermark != recs[i].Watermark {
			t.Fatalf("record %d round-trip mismatch", i)
		}
		for j := range b.Events {
			if b.Events[j] != recs[i].Events[j] {
				t.Fatalf("record %d event %d = %+v, want %+v", i, j, b.Events[j], recs[i].Events[j])
			}
		}
	}
	// Replay from a cursor skips applied records.
	if got := replayAll(t, w2, 11); len(got) != len(recs)-12 || got[0].Seq != 12 {
		t.Fatalf("cursor replay: %d records from seq %d", len(got), got[0].Seq)
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(100)
	appendAll(t, w, recs)
	if st := w.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := w.TruncateThrough(60); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, w, 60)
	if len(got) != 39 || got[0].Seq != 61 {
		t.Fatalf("post-truncate replay: %d records starting at %d", len(got), got[0].Seq)
	}
	// Records beyond the truncation point survive a reopen.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != 100 {
		t.Fatalf("NextSeq after truncate+reopen = %d", w2.NextSeq())
	}
	if got := replayAll(t, w2, 60); len(got) != 39 {
		t.Fatalf("reopen replay: %d records", len(got))
	}
}

// TestWALTornTail simulates a crash mid-write: a truncated or corrupted
// suffix of the final segment is detected by the CRC/length framing and
// cut off; every record before it replays intact, and appends continue
// at the right sequence number.
func TestWALTornTail(t *testing.T) {
	for name, damage := range map[string]func([]byte) []byte{
		"truncated-mid-record": func(b []byte) []byte { return b[:len(b)-7] },
		"flipped-byte":         func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		"trailing-garbage":     func(b []byte) []byte { return append(b, 0xDE, 0xAD, 0xBE) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			recs := mkRecords(10)
			appendAll(t, w, recs)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if len(segs) != 1 {
				t.Fatalf("%d segments", len(segs))
			}
			data, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segs[0], damage(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}

			w2, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatalf("open over torn tail: %v", err)
			}
			defer w2.Close()
			got := replayAll(t, w2, -1)
			if len(got) == 0 || len(got) > len(recs) {
				t.Fatalf("replayed %d of %d records", len(got), len(recs))
			}
			for i, r := range got {
				if r.Seq != int64(i) {
					t.Fatalf("record %d has seq %d", i, r.Seq)
				}
				if _, err := DecodeBatchRecord(r.Payload); err != nil {
					t.Fatalf("record %d corrupt after tail repair: %v", i, err)
				}
			}
			if w2.NextSeq() != int64(len(got)) {
				t.Fatalf("NextSeq %d after %d valid records", w2.NextSeq(), len(got))
			}
			// The log accepts appends again after the repair.
			if _, err := w2.Append(RecBatch, EncodeBatchRecord(recs[0])); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALReset covers the power-failure reconciliation: when a
// checkpoint's cursor is at or past the log's end, recovery restarts
// the log just past the cursor so new appends never reuse covered
// sequence numbers.
func TestWALReset(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, mkRecords(5)) // seqs 0..4, all "covered by the checkpoint"
	if err := w.Reset(100); err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 100 {
		t.Fatalf("NextSeq after reset = %d", w.NextSeq())
	}
	if seq, err := w.Append(RecBatch, EncodeBatchRecord(mkRecords(1)[0])); err != nil || seq != 100 {
		t.Fatalf("append after reset: seq %d, %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != 101 {
		t.Fatalf("NextSeq after reset+reopen = %d", w2.NextSeq())
	}
	if got := replayAll(t, w2, 99); len(got) != 1 || got[0].Seq != 100 {
		t.Fatalf("replay after reset: %d records", len(got))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncInterval} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCtlRecordRoundTrip(t *testing.T) {
	c := CtlRecord{
		Add:         []string{"RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 4s SLIDE 1s"},
		Remove:      []int{2, 5},
		AssignedIDs: []int{7},
	}
	got, err := DecodeCtlRecord(EncodeCtlRecord(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Add) != 1 || got.Add[0] != c.Add[0] || len(got.Remove) != 2 || got.Remove[1] != 5 || got.AssignedIDs[0] != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(EncodeCtlRecord(got), EncodeCtlRecord(c)) {
		t.Fatal("re-encode differs")
	}
}
