package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FsyncPolicy selects when WAL appends reach stable storage.
//
// kill -9 durability (process death) needs only the write syscall, which
// every policy performs before Append returns; the policies differ in
// what survives machine/power failure. Always costs one fsync per
// record, Interval bounds the loss window to FsyncEvery, Never leaves
// flushing entirely to the OS.
type FsyncPolicy int

const (
	// FsyncInterval syncs at most once per FsyncEvery (default 1s).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every appended record.
	FsyncAlways
	// FsyncNever never calls fsync; the OS flushes on its own schedule.
	FsyncNever
)

// ParseFsyncPolicy parses the sharond -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or never)", s)
}

// String renders the policy as its flag value.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// WAL record types.
const (
	// RecBatch is an applied ingest step: the late-filtered events plus
	// the effective (clamped) watermark of one pump message.
	RecBatch byte = 1
	// RecCtl is an applied control-plane change (live query
	// registration/removal) with the plan the optimizer chose, so replay
	// reproduces the exact workload evolution without re-optimizing.
	RecCtl byte = 2
	// RecAdopt is an applied cluster hand-off into this worker: the
	// group slice, the delta steps that catch it up, and the alignment
	// watermarks — everything replay needs to re-graft the groups and
	// regenerate the same emissions.
	RecAdopt byte = 3
	// RecExtract is an applied cluster hand-off out of this worker: the
	// exact group keys removed, so replay removes the same groups.
	RecExtract byte = 4
)

// Record is one decoded WAL entry.
type Record struct {
	Seq     int64
	Type    byte
	Payload []byte
}

// WALOptions configures a WAL.
type WALOptions struct {
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size (default 16 MiB).
	SegmentBytes int64
	// Fsync selects the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 1s).
	FsyncEvery time.Duration
	// Logf receives operational notes (torn-tail truncation); nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o *WALOptions) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// segment is one on-disk WAL file, named wal-<firstSeq>.log.
type segment struct {
	path     string
	firstSeq int64
	size     int64
}

// WAL is an append-only segmented write-ahead log. One goroutine appends
// (sharond's pump); Replay and TruncateThrough run before serving or on
// the same goroutine.
//
// On-disk framing, per record:
//
//	u32 LE body length | u32 LE CRC32-Castagnoli(body) | body
//	body = record type byte | uvarint seq | payload
//
// Sequence numbers increase by one per record across segments; the first
// record of segment file wal-<n>.log has seq n. Opening validates every
// segment; an incomplete or corrupt suffix of the final segment (a torn
// write at the crash point) is detected by the CRC/length check and cut
// off, while corruption before the final tail is a hard error.
type WAL struct {
	dir      string
	opts     WALOptions
	segments []segment
	f        *os.File
	curSize  int64
	nextSeq  int64
	lastSync time.Time

	appended int64
	synced   int64
	dirty    bool // records written since the last sync
}

const walMaxRecord = 256 << 20 // sanity bound on a frame's body length

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// OpenWAL opens (or creates) the WAL in dir, validating every segment
// and truncating a torn tail on the final one.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextSeq: 0}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	for _, path := range names {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "wal-"), ".log")
		first, err := strconv.ParseInt(base, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: unrecognized wal file %q", path)
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		w.segments = append(w.segments, segment{path: path, firstSeq: first, size: st.Size()})
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].firstSeq < w.segments[j].firstSeq })
	for i := range w.segments {
		final := i == len(w.segments)-1
		nextSeq, validSize, err := w.validateSegment(&w.segments[i], final)
		if err != nil {
			return nil, err
		}
		if !final && i+1 < len(w.segments) && nextSeq != w.segments[i+1].firstSeq {
			return nil, fmt.Errorf("persist: wal gap: segment %s ends at seq %d, next starts at %d",
				w.segments[i].path, nextSeq-1, w.segments[i+1].firstSeq)
		}
		if final {
			if validSize < w.segments[i].size {
				w.opts.Logf("wal: truncating torn tail of %s at %d (was %d)", w.segments[i].path, validSize, w.segments[i].size)
				if err := os.Truncate(w.segments[i].path, validSize); err != nil {
					return nil, fmt.Errorf("persist: truncate torn wal tail: %w", err)
				}
				w.segments[i].size = validSize
			}
			w.nextSeq = nextSeq
		}
	}
	if len(w.segments) > 0 {
		last := &w.segments[len(w.segments)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.curSize = last.size
	}
	w.lastSync = time.Now()
	return w, nil
}

// validateSegment scans a segment, returning the seq after its last
// valid record and the byte offset of the valid prefix. In a non-final
// segment every byte must parse (a later segment exists, so a short
// record is corruption, not a torn tail).
func (w *WAL) validateSegment(seg *segment, final bool) (nextSeq int64, validSize int64, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, err
	}
	seq := seg.firstSeq
	off := int64(0)
	for {
		rec, n, ferr := parseFrame(data[off:])
		if ferr != nil {
			if final {
				return seq, off, nil // torn tail: cut here
			}
			return 0, 0, fmt.Errorf("persist: wal %s corrupt at offset %d: %v", seg.path, off, ferr)
		}
		if n == 0 {
			return seq, off, nil // clean end
		}
		if rec.Seq != seq {
			if final {
				return seq, off, nil
			}
			return 0, 0, fmt.Errorf("persist: wal %s: record seq %d, want %d", seg.path, rec.Seq, seq)
		}
		seq++
		off += n
	}
}

// parseFrame decodes one record frame from b (the shared CRC frame
// layer plus the WAL's type|seq|payload body). n == 0 with nil error
// means a clean end of input; a non-nil error means the bytes at the
// cursor do not form a complete valid frame.
func parseFrame(b []byte) (Record, int64, error) {
	body, size, err := NextFrame(b, walMaxRecord)
	if err != nil || size == 0 {
		return Record{}, 0, err
	}
	if len(body) < 1 {
		return Record{}, 0, fmt.Errorf("empty body")
	}
	typ := body[0]
	seq, n := binary.Uvarint(body[1:])
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("truncated seq")
	}
	payload := make([]byte, len(body)-1-n)
	copy(payload, body[1+n:])
	return Record{Seq: int64(seq), Type: typ, Payload: payload}, size, nil
}

// NextSeq returns the sequence number the next appended record gets.
func (w *WAL) NextSeq() int64 { return w.nextSeq }

// Append writes one record and returns its sequence number. The write
// syscall completes before Append returns (kill -9 safety); fsync
// follows the configured policy.
func (w *WAL) Append(typ byte, payload []byte) (int64, error) {
	seq := w.nextSeq
	if w.f == nil || w.curSize >= w.opts.SegmentBytes {
		if err := w.rotate(seq); err != nil {
			return 0, err
		}
	}
	body := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload))
	body = append(body, typ)
	body = binary.AppendUvarint(body, uint64(seq))
	body = append(body, payload...)
	frame := AppendFrame(make([]byte, 0, FrameHeaderLen+len(body)), body)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	w.curSize += int64(len(frame))
	w.segments[len(w.segments)-1].size = w.curSize
	w.nextSeq++
	w.appended++
	w.dirty = true
	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
		w.synced++
		w.dirty = false
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncEvery {
			if err := w.f.Sync(); err != nil {
				return 0, err
			}
			w.synced++
			w.dirty = false
			w.lastSync = time.Now()
		}
	}
	return seq, nil
}

// rotate closes the current segment and starts wal-<firstSeq>.log.
func (w *WAL) rotate(firstSeq int64) error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016d.log", firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: wal rotate: %w", err)
	}
	w.f = f
	w.curSize = 0
	w.segments = append(w.segments, segment{path: path, firstSeq: firstSeq})
	syncDir(w.dir)
	return nil
}

// Sync forces the current segment to stable storage (checkpoints sync
// before recording their WAL cursor; drain syncs before exit).
func (w *WAL) Sync() error {
	if w.f == nil {
		return nil
	}
	w.synced++
	w.dirty = false
	w.lastSync = time.Now()
	return w.f.Sync()
}

// SyncIfDirty syncs only when records were written since the last sync.
// The server's pump ticks it on the FsyncInterval policy so a stream
// that goes quiet still reaches stable storage within FsyncEvery —
// Append-driven syncing alone would leave the tail in the page cache
// indefinitely.
func (w *WAL) SyncIfDirty() error {
	if !w.dirty {
		return nil
	}
	return w.Sync()
}

// Reset discards every segment and restarts the sequence at nextSeq.
// Recovery calls it when a checkpoint's cursor is at or past the log's
// end — every surviving record is covered by the checkpoint, and
// without the reset, new appends would reuse sequence numbers at or
// below the cursor and be silently skipped by the next recovery (a
// power failure can fsync a checkpoint whose newest WAL records never
// reached the disk).
func (w *WAL) Reset(nextSeq int64) error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	for _, seg := range w.segments {
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	w.segments = nil
	w.curSize = 0
	w.nextSeq = nextSeq
	w.dirty = false
	syncDir(w.dir)
	return nil
}

// Close syncs and closes the open segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Replay invokes fn for every record with seq > afterSeq, in order.
func (w *WAL) Replay(afterSeq int64, fn func(Record) error) error {
	for i := range w.segments {
		seg := &w.segments[i]
		if i+1 < len(w.segments) && w.segments[i+1].firstSeq <= afterSeq+1 {
			continue // whole segment at or below the cursor
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off := int64(0)
		for off < int64(len(data)) {
			rec, n, err := parseFrame(data[off:])
			if err != nil || n == 0 {
				break // validated at Open; anything here is a freshly torn tail
			}
			off += n
			if rec.Seq <= afterSeq {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateThrough removes whole segments all of whose records have seq
// at or below seq (they are covered by a checkpoint). The active segment
// is never removed.
func (w *WAL) TruncateThrough(seq int64) error {
	kept := w.segments[:0]
	for i := range w.segments {
		last := i == len(w.segments)-1
		coveredEnd := w.nextSeq - 1
		if !last {
			coveredEnd = w.segments[i+1].firstSeq - 1
		}
		if !last && coveredEnd <= seq {
			if err := os.Remove(w.segments[i].path); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, w.segments[i])
	}
	w.segments = kept
	syncDir(w.dir)
	return nil
}

// WALStats is the /metrics view of the log.
type WALStats struct {
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	NextSeq  int64 `json:"next_seq"`
	Appended int64 `json:"appended"`
	Syncs    int64 `json:"syncs"`
}

// Stats snapshots the WAL's counters.
func (w *WAL) Stats() WALStats {
	st := WALStats{Segments: len(w.segments), NextSeq: w.nextSeq, Appended: w.appended, Syncs: w.synced}
	for _, s := range w.segments {
		st.Bytes += s.size
	}
	return st
}

// syncDir fsyncs a directory so renames/creates/removes are durable;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
