package gen

import (
	"math"
	"math/rand"

	"github.com/sharon-project/sharon/internal/event"
)

// StreamConfig drives the core synthetic stream generator. The three
// data-set generators (taxi, Linear Road, e-commerce) are flavored
// wrappers around it.
type StreamConfig struct {
	// Types is the event-type alphabet to draw from.
	Types []event.Type
	// TypeWeights optionally skews type frequencies (len == len(Types));
	// nil means uniform.
	TypeWeights []float64
	// NumKeys is the number of distinct group keys (vehicles, customers).
	NumKeys int
	// Events is the total number of events to generate.
	Events int
	// StartRate and EndRate are events per second at the beginning and
	// end of the stream; the rate ramps linearly between them (Linear
	// Road's ramp-up). Equal values give a constant-rate stream.
	StartRate, EndRate float64
	// ValRange bounds the uniform numeric attribute [0, ValRange).
	ValRange float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces a strictly time-ordered stream per cfg.
func Generate(cfg StreamConfig) event.Stream {
	if cfg.Events <= 0 || len(cfg.Types) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NumKeys <= 0 {
		cfg.NumKeys = 1
	}
	if cfg.StartRate <= 0 {
		cfg.StartRate = 1000
	}
	if cfg.EndRate <= 0 {
		cfg.EndRate = cfg.StartRate
	}
	if cfg.ValRange <= 0 {
		cfg.ValRange = 100
	}
	cum := cumulative(cfg.TypeWeights, len(cfg.Types))

	out := make(event.Stream, 0, cfg.Events)
	var t float64 // time in ticks
	for i := 0; i < cfg.Events; i++ {
		frac := float64(i) / float64(cfg.Events)
		rate := cfg.StartRate + (cfg.EndRate-cfg.StartRate)*frac
		gap := float64(event.TicksPerSecond) / rate
		if gap < 1 {
			gap = 1
		}
		t += gap
		out = append(out, event.Event{
			Time: int64(t),
			Type: cfg.Types[pick(rng, cum)],
			Key:  event.GroupKey(rng.Intn(cfg.NumKeys)),
			Val:  rng.Float64() * cfg.ValRange,
		})
	}
	// Gaps below one tick are clamped to 1, which keeps the stream
	// strictly ordered by construction; validate in tests, not here.
	return out
}

// cumulative builds a cumulative weight table; nil weights mean uniform.
func cumulative(weights []float64, n int) []float64 {
	cum := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil && i < len(weights) {
			w = weights[i]
		}
		if w < 0 {
			w = 0
		}
		sum += w
		cum[i] = sum
	}
	return cum
}

func pick(rng *rand.Rand, cum []float64) int {
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ZipfWeights returns n weights following a Zipf distribution with
// exponent s (s=0 is uniform); used by the taxi generator to skew route
// popularity.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
	}
	return w
}
