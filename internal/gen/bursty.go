package gen

import (
	"math/rand"

	"github.com/sharon-project/sharon/internal/event"
)

// BurstShape selects the rate envelope of a bursty stream. All shapes
// alternate between a valley rate and a burst rate; they differ in how
// the transitions are scheduled.
type BurstShape int

const (
	// ShapeSquare alternates hard between BaseRate and BurstRate: each
	// period opens at BaseRate and spends its final Duty fraction at
	// BurstRate. Opening in the valley lets rate detectors prime their
	// baseline before the first burst hits. The canonical worst case
	// for a fixed sharing plan.
	ShapeSquare BurstShape = iota
	// ShapePoisson draws burst onsets from a Poisson process (mean
	// inter-burst gap = Period seconds) with exponentially distributed
	// burst durations (mean = Duty*Period seconds). Bursts may merge
	// when a new onset lands inside a live burst.
	ShapePoisson
	// ShapeRamp ramps linearly from BaseRate up to BurstRate over each
	// period and snaps back — a sawtooth that exercises the detector's
	// thresholds gradually instead of edge-on.
	ShapeRamp
)

// String names the shape for experiment rows and logs.
func (s BurstShape) String() string {
	switch s {
	case ShapeSquare:
		return "square"
	case ShapePoisson:
		return "poisson"
	case ShapeRamp:
		return "ramp"
	}
	return "unknown"
}

// BurstyConfig drives GenerateBursty. The envelope is deterministic per
// Seed, including the Poisson shape's onset schedule.
type BurstyConfig struct {
	// Types is the event-type alphabet; TypeWeights optionally skews it
	// (nil means uniform), as in StreamConfig.
	Types       []event.Type
	TypeWeights []float64
	// NumKeys is the number of distinct group keys.
	NumKeys int
	// Events is the total number of events to generate.
	Events int
	// BaseRate is the valley rate and BurstRate the peak rate, both in
	// events per second. BurstRate should comfortably exceed the burst
	// detector's enter threshold over BaseRate to be seen as a burst.
	BaseRate, BurstRate float64
	// Period is the seconds per cycle (square, ramp) or the mean
	// inter-burst gap (poisson).
	Period float64
	// Duty is the fraction of a period spent bursting (square) or the
	// mean burst duration as a fraction of Period (poisson). Ignored by
	// ramp.
	Duty float64
	// Shape picks the envelope.
	Shape BurstShape
	// ValRange bounds the uniform numeric attribute [0, ValRange).
	ValRange float64
	// Seed makes generation deterministic.
	Seed int64
}

func (cfg *BurstyConfig) fill() {
	if cfg.NumKeys <= 0 {
		cfg.NumKeys = 1
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 100
	}
	if cfg.BurstRate <= cfg.BaseRate {
		cfg.BurstRate = cfg.BaseRate * 8
	}
	if cfg.Period <= 0 {
		cfg.Period = 4
	}
	if cfg.Duty <= 0 || cfg.Duty >= 1 {
		cfg.Duty = 0.25
	}
	if cfg.ValRange <= 0 {
		cfg.ValRange = 100
	}
}

// GenerateBursty produces a strictly time-ordered stream whose arrival
// rate follows the configured burst envelope. Event contents (type, key,
// value) are drawn exactly as in Generate; only the inter-arrival gaps
// differ, so steady and bursty runs exercise the same query logic.
func GenerateBursty(cfg BurstyConfig) event.Stream {
	if cfg.Events <= 0 || len(cfg.Types) == 0 {
		return nil
	}
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cum := cumulative(cfg.TypeWeights, len(cfg.Types))
	env := newEnvelope(cfg, rng)

	out := make(event.Stream, 0, cfg.Events)
	var t float64 // time in ticks
	for i := 0; i < cfg.Events; i++ {
		rate := env.rateAt(t / event.TicksPerSecond)
		gap := float64(event.TicksPerSecond) / rate
		if gap < 1 {
			gap = 1
		}
		t += gap
		out = append(out, event.Event{
			Time: int64(t),
			Type: cfg.Types[pick(rng, cum)],
			Key:  event.GroupKey(rng.Intn(cfg.NumKeys)),
			Val:  rng.Float64() * cfg.ValRange,
		})
	}
	return out
}

// BurstyStreamForWorkload is the bursty analogue of StreamForWorkload:
// hot types weighted hotFactor over fillers, arrival gaps following the
// burst envelope.
func BurstyStreamForWorkload(types []event.Type, numChunkTypes int, hotFactor float64, cfg BurstyConfig) event.Stream {
	if hotFactor <= 0 {
		hotFactor = 3
	}
	weights := make([]float64, len(types))
	for i := range weights {
		if i < numChunkTypes {
			weights[i] = hotFactor
		} else {
			weights[i] = 1
		}
	}
	cfg.Types = types
	cfg.TypeWeights = weights
	return GenerateBursty(cfg)
}

// envelope maps stream time (seconds) to an instantaneous target rate.
type envelope struct {
	cfg BurstyConfig
	rng *rand.Rand
	// Poisson schedule state: the currently materialized burst interval
	// [burstStart, burstEnd) and the next onset after it.
	burstStart, burstEnd float64
}

func newEnvelope(cfg BurstyConfig, rng *rand.Rand) *envelope {
	e := &envelope{cfg: cfg, rng: rng}
	if cfg.Shape == ShapePoisson {
		// First onset after one mean gap keeps the stream opening in a
		// valley so detectors prime on the base rate.
		e.burstStart = cfg.Period * (0.5 + rng.Float64())
		e.burstEnd = e.burstStart + e.duration()
	}
	return e
}

func (e *envelope) duration() float64 {
	return e.cfg.Duty * e.cfg.Period * e.rng.ExpFloat64()
}

func (e *envelope) rateAt(sec float64) float64 {
	cfg := e.cfg
	switch cfg.Shape {
	case ShapePoisson:
		// Advance the schedule until the current interval covers sec.
		// Time only moves forward, so this stays O(1) amortized.
		for sec >= e.burstEnd {
			gap := cfg.Period * e.rng.ExpFloat64()
			start := e.burstEnd + gap
			end := start + e.duration()
			e.burstStart, e.burstEnd = start, end
		}
		if sec >= e.burstStart {
			return cfg.BurstRate
		}
		return cfg.BaseRate
	case ShapeRamp:
		frac := mod1(sec / cfg.Period)
		return cfg.BaseRate + (cfg.BurstRate-cfg.BaseRate)*frac
	default: // ShapeSquare
		frac := mod1(sec / cfg.Period)
		if frac >= 1-cfg.Duty {
			return cfg.BurstRate
		}
		return cfg.BaseRate
	}
}

// mod1 returns the fractional part of x for x >= 0.
func mod1(x float64) float64 { return x - float64(int64(x)) }
