package gen

import (
	"fmt"
	"math/rand"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// Mode selects the sharing topology of a generated workload.
type Mode int

const (
	// ModeChunks embeds disjoint shared chunks: rich sharing, few
	// conflicts. Used for the executor sweeps (Fig. 14), where sharing
	// benefit dominates.
	ModeChunks Mode = iota
	// ModeCorridor makes every query slice a common "corridor" of types,
	// like the paper's traffic grid (Table 1): every pair of overlapping
	// slices induces mutually conflicting sharable sub-patterns. Used for
	// the optimizer experiments (Fig. 15–16), which need dense conflicts.
	ModeCorridor
)

// WorkloadConfig parameterizes the synthetic multi-query workload
// generator used by the §8 sweeps. Sharing opportunities are controlled
// explicitly. In ModeChunks the generator creates a pool of "popular
// corridor" chunks (contiguous type sequences); queries embed randomly
// chosen chunks, separated by private filler types; queries embedding the
// same chunk share all of its sub-patterns, which also induces the paper's
// sharing conflicts (a chunk of length c yields mutually overlapping
// sharable patterns, like p1/p2/p3 in Table 1). ModeCorridor instead
// slices one common corridor, maximizing conflicts.
type WorkloadConfig struct {
	// Mode selects the sharing topology (chunks or corridor).
	Mode Mode
	// NumQueries is the workload size (paper default: 20).
	NumQueries int
	// PatternLen is each query's pattern length (paper default: 10).
	PatternLen int
	// SharedChunks is the number of distinct shareable chunks (default
	// max(2, NumQueries/4)).
	SharedChunks int
	// ChunkLen is the length of each shared chunk (default 3).
	ChunkLen int
	// ChunksPerQuery is how many chunks each query embeds (default 2).
	ChunksPerQuery int
	// FillerPool is the number of distinct private filler types to draw
	// from (default 4*PatternLen).
	FillerPool int
	// DuplicateFraction is the fraction of queries that repeat an earlier
	// query's pattern verbatim (like q6/q7 in the paper's Table 1, or
	// many subscribers watching the same route). Duplicated queries share
	// their entire aggregation, which is where the paper's large
	// linear-in-queries speedups come from. Default 0.
	DuplicateFraction float64
	// UniquePatterns, when positive, overrides DuplicateFraction: the
	// first UniquePatterns queries get fresh patterns and every later
	// query duplicates a random earlier one. This models a fixed street
	// grid / catalog with a growing subscriber population, the regime in
	// which the paper's speedup grows with the workload size (Fig. 14b).
	UniquePatterns int
	// CorridorLen is the number of corridor types in ModeCorridor
	// (default PatternLen+4).
	CorridorLen int
	// SliceLen is how many corridor types each query embeds in
	// ModeCorridor (default max(2, PatternLen/2)).
	SliceLen int
	// VarySliceLen draws each query's corridor slice length uniformly
	// from [2, SliceLen] instead of using SliceLen verbatim. Mixing long
	// and short slices produces the Example-12 weight structure where one
	// heavy candidate conflicts with several medium ones, separating the
	// greedy plan from the optimal plan (Fig. 16).
	VarySliceLen bool
	// Window and Slide in ticks.
	Window, Slide int64
	// GroupBy partitions by event key.
	GroupBy bool
	// Agg selects the aggregation function (default COUNT(*)).
	Agg query.AggKind
	// Seed makes generation deterministic.
	Seed int64
}

func (cfg *WorkloadConfig) fill() {
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 20
	}
	if cfg.PatternLen <= 0 {
		cfg.PatternLen = 10
	}
	if cfg.SharedChunks <= 0 {
		cfg.SharedChunks = cfg.NumQueries / 4
		if cfg.SharedChunks < 2 {
			cfg.SharedChunks = 2
		}
	}
	if cfg.ChunkLen <= 1 {
		cfg.ChunkLen = 3
	}
	if cfg.ChunksPerQuery <= 0 {
		cfg.ChunksPerQuery = 2
	}
	for cfg.ChunksPerQuery*cfg.ChunkLen > cfg.PatternLen {
		cfg.ChunksPerQuery--
	}
	if cfg.ChunksPerQuery < 1 {
		cfg.ChunksPerQuery = 1
		cfg.ChunkLen = cfg.PatternLen
	}
	if cfg.ChunksPerQuery > cfg.SharedChunks {
		cfg.ChunksPerQuery = cfg.SharedChunks
	}
	if cfg.FillerPool <= 0 {
		cfg.FillerPool = 4 * cfg.PatternLen
	}
	if cfg.CorridorLen <= 0 {
		cfg.CorridorLen = cfg.PatternLen + 4
	}
	if cfg.SliceLen <= 0 {
		cfg.SliceLen = cfg.PatternLen / 2
	}
	if cfg.SliceLen < 2 {
		cfg.SliceLen = 2
	}
	if cfg.SliceLen > cfg.PatternLen {
		cfg.SliceLen = cfg.PatternLen
	}
	if cfg.SliceLen > cfg.CorridorLen {
		cfg.SliceLen = cfg.CorridorLen
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * 60 * event.TicksPerSecond
	}
	if cfg.Slide <= 0 {
		cfg.Slide = cfg.Window / 10
	}
}

// GenWorkload builds a workload per cfg, interning types into reg. It
// returns the workload and the full type alphabet (chunk types followed by
// filler types) for stream generation. Chunk types come first so stream
// generators can weight them more heavily.
func GenWorkload(reg *event.Registry, cfg WorkloadConfig) (query.Workload, []event.Type) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Mode == ModeCorridor {
		return genCorridor(reg, cfg, rng)
	}

	// Shared chunks over disjoint type sets, so no query ever repeats a
	// type (the paper's core assumption 3).
	chunkTypes := make([]event.Type, 0, cfg.SharedChunks*cfg.ChunkLen)
	chunks := make([]query.Pattern, cfg.SharedChunks)
	for c := range chunks {
		p := make(query.Pattern, cfg.ChunkLen)
		for i := range p {
			t := reg.Intern(fmt.Sprintf("C%d_%d", c+1, i+1))
			p[i] = t
			chunkTypes = append(chunkTypes, t)
		}
		chunks[c] = p
	}
	fillers := make([]event.Type, cfg.FillerPool)
	for i := range fillers {
		fillers[i] = reg.Intern(fmt.Sprintf("F%d", i+1))
	}

	var w query.Workload
	for qi := 0; qi < cfg.NumQueries; qi++ {
		dup := rng.Float64() < cfg.DuplicateFraction
		if cfg.UniquePatterns > 0 {
			dup = qi >= cfg.UniquePatterns
		}
		if len(w) > 0 && dup {
			src := w[rng.Intn(len(w))]
			w = append(w, &query.Query{
				Pattern: src.Pattern.Clone(),
				Agg:     src.Agg,
				Window:  src.Window,
				GroupBy: cfg.GroupBy,
			})
			continue
		}
		pick := rng.Perm(cfg.SharedChunks)[:cfg.ChunksPerQuery]
		nFill := cfg.PatternLen - cfg.ChunksPerQuery*cfg.ChunkLen
		fillPick := rng.Perm(cfg.FillerPool)
		if nFill > len(fillPick) {
			nFill = len(fillPick)
		}
		// Distribute fillers into the gaps around the chunks.
		gaps := make([]int, cfg.ChunksPerQuery+1)
		for i := 0; i < nFill; i++ {
			gaps[rng.Intn(len(gaps))]++
		}
		var pat query.Pattern
		fi := 0
		for g := 0; g <= cfg.ChunksPerQuery; g++ {
			for k := 0; k < gaps[g]; k++ {
				pat = append(pat, fillers[fillPick[fi]])
				fi++
			}
			if g < cfg.ChunksPerQuery {
				pat = append(pat, chunks[pick[g]]...)
			}
		}
		agg := query.AggSpec{Kind: cfg.Agg}
		if cfg.Agg != query.CountStar {
			agg.Target = pat[rng.Intn(len(pat))]
		}
		w = append(w, &query.Query{
			Pattern: pat,
			Agg:     agg,
			Window:  query.Window{Length: cfg.Window, Slide: cfg.Slide},
			GroupBy: cfg.GroupBy,
		})
	}
	w.Renumber()
	types := append(append([]event.Type(nil), chunkTypes...), fillers...)
	return w, types
}

// genCorridor builds the corridor-mode workload: each query's pattern is a
// random contiguous slice of the corridor types, padded with private
// fillers. Slices that overlap share every common sub-pattern, so the
// candidate graph is dense with the suffix/prefix conflicts of Definition 6
// (like p1/p2/p3 in the paper's traffic workload).
func genCorridor(reg *event.Registry, cfg WorkloadConfig, rng *rand.Rand) (query.Workload, []event.Type) {
	corridor := make([]event.Type, cfg.CorridorLen)
	for i := range corridor {
		corridor[i] = reg.Intern(fmt.Sprintf("X%d", i+1))
	}
	fillers := make([]event.Type, cfg.FillerPool)
	for i := range fillers {
		fillers[i] = reg.Intern(fmt.Sprintf("F%d", i+1))
	}
	var w query.Workload
	for qi := 0; qi < cfg.NumQueries; qi++ {
		dup := rng.Float64() < cfg.DuplicateFraction
		if cfg.UniquePatterns > 0 {
			dup = qi >= cfg.UniquePatterns
		}
		if len(w) > 0 && dup {
			src := w[rng.Intn(len(w))]
			w = append(w, &query.Query{
				Pattern: src.Pattern.Clone(),
				Agg:     src.Agg,
				Window:  src.Window,
				GroupBy: cfg.GroupBy,
			})
			continue
		}
		sliceLen := cfg.SliceLen
		if cfg.VarySliceLen && cfg.SliceLen > 2 {
			sliceLen = 2 + rng.Intn(cfg.SliceLen-1)
		}
		start := rng.Intn(cfg.CorridorLen - sliceLen + 1)
		slice := corridor[start : start+sliceLen]
		nFill := cfg.PatternLen - sliceLen
		fillPick := rng.Perm(cfg.FillerPool)
		if nFill > len(fillPick) {
			nFill = len(fillPick)
		}
		before := rng.Intn(nFill + 1)
		var pat query.Pattern
		for i := 0; i < before; i++ {
			pat = append(pat, fillers[fillPick[i]])
		}
		pat = append(pat, slice...)
		for i := before; i < nFill; i++ {
			pat = append(pat, fillers[fillPick[i]])
		}
		agg := query.AggSpec{Kind: cfg.Agg}
		if cfg.Agg != query.CountStar {
			agg.Target = pat[rng.Intn(len(pat))]
		}
		w = append(w, &query.Query{
			Pattern: pat,
			Agg:     agg,
			Window:  query.Window{Length: cfg.Window, Slide: cfg.Slide},
			GroupBy: cfg.GroupBy,
		})
	}
	w.Renumber()
	types := append(append([]event.Type(nil), corridor...), fillers...)
	return w, types
}

// NumHotTypes reports how many leading entries of the GenWorkload type
// alphabet are shared ("hot") types for the given config: chunk types in
// ModeChunks, corridor types in ModeCorridor.
func NumHotTypes(cfg WorkloadConfig) int {
	cfg.fill()
	if cfg.Mode == ModeCorridor {
		return cfg.CorridorLen
	}
	return cfg.SharedChunks * cfg.ChunkLen
}

// StreamForWorkload generates a stream covering the workload's type
// alphabet. chunkTypes (the leading len-weighted entries of types) are
// weighted `hotFactor` times heavier than fillers, concentrating matches on
// shared patterns like the paper's popular routes.
func StreamForWorkload(types []event.Type, numChunkTypes, events, numKeys int, rate float64, hotFactor float64, seed int64) event.Stream {
	if hotFactor <= 0 {
		hotFactor = 3
	}
	weights := make([]float64, len(types))
	for i := range weights {
		if i < numChunkTypes {
			weights[i] = hotFactor
		} else {
			weights[i] = 1
		}
	}
	return Generate(StreamConfig{
		Types:       types,
		TypeWeights: weights,
		NumKeys:     numKeys,
		Events:      events,
		StartRate:   rate,
		EndRate:     rate,
		ValRange:    100,
		Seed:        seed,
	})
}
