package gen

import (
	"testing"

	"github.com/sharon-project/sharon/internal/event"
)

// windowedRates splits the stream into fixed wall-clock buckets and
// returns the observed events/sec per bucket.
func windowedRates(s event.Stream, bucketSec float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	bucket := int64(bucketSec * event.TicksPerSecond)
	last := s[len(s)-1].Time
	n := int(last/bucket) + 1
	counts := make([]float64, n)
	for _, e := range s {
		counts[e.Time/bucket]++
	}
	for i := range counts {
		counts[i] /= bucketSec
	}
	return counts
}

func TestGenerateBurstyShapes(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 4)
	for _, shape := range []BurstShape{ShapeSquare, ShapePoisson, ShapeRamp} {
		t.Run(shape.String(), func(t *testing.T) {
			// BurstRate stays below TicksPerSecond: gaps clamp to one
			// tick, so rates beyond it are not representable.
			s := GenerateBursty(BurstyConfig{
				Types: types, NumKeys: 4, Events: 20000,
				BaseRate: 100, BurstRate: 1000, Period: 4, Duty: 0.25,
				Shape: shape, Seed: 7,
			})
			if len(s) != 20000 {
				t.Fatalf("len = %d", len(s))
			}
			for i := 1; i < len(s); i++ {
				if s[i].Time <= s[i-1].Time {
					t.Fatalf("not strictly ordered at %d", i)
				}
			}
			// The envelope must actually swing: some buckets near the
			// base rate, some several times above it.
			rates := windowedRates(s, 1)
			var lo, hi int
			for _, r := range rates {
				if r < 300 {
					lo++
				}
				if r > 700 {
					hi++
				}
			}
			if lo == 0 || hi == 0 {
				t.Fatalf("%s: envelope did not swing (lo=%d hi=%d rates=%v)", shape, lo, hi, rates[:min(len(rates), 12)])
			}
		})
	}
}

func TestGenerateBurstyDeterministic(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 3)
	cfg := BurstyConfig{Types: types, NumKeys: 2, Events: 5000,
		BaseRate: 100, BurstRate: 900, Period: 3, Duty: 0.3,
		Shape: ShapePoisson, Seed: 42}
	a := GenerateBursty(cfg)
	b := GenerateBursty(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBurstyStreamForWorkloadWeightsHotTypes(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 6)
	s := BurstyStreamForWorkload(types, 2, 8, BurstyConfig{
		NumKeys: 4, Events: 12000, BaseRate: 300, BurstRate: 1500,
		Period: 2, Duty: 0.5, Shape: ShapeSquare, Seed: 3,
	})
	hot := 0
	for _, e := range s {
		if e.Type == types[0] || e.Type == types[1] {
			hot++
		}
	}
	// 2 hot types at weight 8 vs 4 fillers at weight 1: expect
	// 16/20 = 80% hot; allow slack for sampling noise.
	if frac := float64(hot) / float64(len(s)); frac < 0.7 {
		t.Fatalf("hot fraction = %.2f, want >= 0.7", frac)
	}
}
