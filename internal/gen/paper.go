// Package gen provides the evaluation substrates of the paper's §8: the
// paper's running-example workloads (traffic q1–q7, e-commerce q8–q11),
// synthetic stand-ins for the three data sets (NYC Taxi, Linear Road,
// e-commerce), and a parameterized workload generator for the sweeps over
// query count, pattern length, and events per window.
package gen

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

// PaperWorkload bundles a paper example workload with its registry and
// the sharable patterns of its Table 1.
type PaperWorkload struct {
	Reg      *event.Registry
	Workload query.Workload
	// Patterns are the paper's sharing candidates in paper order
	// (p1..p7 for traffic).
	Patterns []query.Pattern
	// Weights are the benefit values of Figure 4 (traffic only); the
	// paper derives them from unpublished rate constants, so tests inject
	// them directly.
	Weights []float64
}

// Traffic builds the traffic monitoring workload of Figure 1 / Table 1:
// seven COUNT(*) queries over street-segment position reports, 10-minute
// windows sliding every minute, grouped by vehicle.
func Traffic() *PaperWorkload {
	reg := event.NewRegistry()
	mk := func(streets ...string) query.Pattern {
		p := make(query.Pattern, len(streets))
		for i, s := range streets {
			p[i] = reg.Intern(s)
		}
		return p
	}
	win := query.Window{Length: 10 * 60 * event.TicksPerSecond, Slide: 60 * event.TicksPerSecond}
	patterns := []query.Pattern{
		mk("OakSt", "MainSt"),            // p1
		mk("ParkAve", "OakSt"),           // p2
		mk("ParkAve", "OakSt", "MainSt"), // p3
		mk("MainSt", "WestSt"),           // p4
		mk("OakSt", "MainSt", "WestSt"),  // p5
		mk("MainSt", "StateSt"),          // p6
		mk("ElmSt", "ParkAve"),           // p7
	}
	queries := []query.Pattern{
		mk("OakSt", "MainSt", "StateSt"),           // q1: contains p1, p6
		mk("OakSt", "MainSt", "WestSt"),            // q2: contains p1, p4, p5
		mk("ParkAve", "OakSt", "MainSt"),           // q3: contains p1, p2, p3
		mk("ParkAve", "OakSt", "MainSt", "WestSt"), // q4: contains p1..p5
		mk("MainSt", "StateSt"),                    // q5: contains p6
		mk("ElmSt", "ParkAve"),                     // q6: contains p7
		mk("ElmSt", "ParkAve"),                     // q7: contains p7
	}
	var w query.Workload
	for i, p := range queries {
		w = append(w, &query.Query{
			ID:      i,
			Name:    fmt.Sprintf("q%d", i+1),
			Pattern: p,
			Agg:     query.AggSpec{Kind: query.CountStar},
			Window:  win,
			GroupBy: true,
		})
	}
	return &PaperWorkload{
		Reg:      reg,
		Workload: w,
		Patterns: patterns,
		Weights:  []float64{25, 9, 12, 15, 20, 8, 18}, // Figure 4
	}
}

// TrafficReplicas builds M disjoint copies of the traffic workload q1–q7,
// one per city neighborhood (7*M queries total), together with the full
// type alphabet and per-type stream weights. Street popularity within each
// neighborhood is skewed so that the arterial street (MainSt) is hot —
// the regime in which the greedy optimizer repeats Example 12's mistake in
// every neighborhood, picking (p1, {q1..q4}) and excluding the jointly
// better {p2, p4, p6}. Used by the Figure 16 plan-quality experiment.
func TrafficReplicas(reg *event.Registry, copies int) (query.Workload, []event.Type, []float64) {
	// Per-street relative rates: Oak, Main (hot), Park, West, State, Elm.
	profile := []float64{8, 30, 6, 5, 10, 4}
	streets := []string{"OakSt", "MainSt", "ParkAve", "WestSt", "StateSt", "ElmSt"}
	win := query.Window{Length: 10 * 60 * event.TicksPerSecond, Slide: 60 * event.TicksPerSecond}

	var w query.Workload
	var types []event.Type
	var weights []float64
	for c := 0; c < copies; c++ {
		id := make(map[string]event.Type, len(streets))
		for i, s := range streets {
			t := reg.Intern(fmt.Sprintf("N%d_%s", c+1, s))
			id[s] = t
			types = append(types, t)
			weights = append(weights, profile[i])
		}
		mk := func(names ...string) query.Pattern {
			p := make(query.Pattern, len(names))
			for i, n := range names {
				p[i] = id[n]
			}
			return p
		}
		for _, pat := range []query.Pattern{
			mk("OakSt", "MainSt", "StateSt"),
			mk("OakSt", "MainSt", "WestSt"),
			mk("ParkAve", "OakSt", "MainSt"),
			mk("ParkAve", "OakSt", "MainSt", "WestSt"),
			mk("MainSt", "StateSt"),
			mk("ElmSt", "ParkAve"),
			mk("ElmSt", "ParkAve"),
		} {
			w = append(w, &query.Query{
				Pattern: pat,
				Agg:     query.AggSpec{Kind: query.CountStar},
				Window:  win,
				GroupBy: true,
			})
		}
	}
	w.Renumber()
	return w, types, weights
}

// Purchases builds the e-commerce workload of Figure 2: four COUNT(*)
// queries over item purchases, the pattern (Laptop, Case) shared by all
// four, 20-minute windows sliding every minute, grouped by customer.
func Purchases() *PaperWorkload {
	reg := event.NewRegistry()
	mk := func(items ...string) query.Pattern {
		p := make(query.Pattern, len(items))
		for i, s := range items {
			p[i] = reg.Intern(s)
		}
		return p
	}
	win := query.Window{Length: 20 * 60 * event.TicksPerSecond, Slide: 60 * event.TicksPerSecond}
	queries := []query.Pattern{
		mk("Laptop", "Case", "Adapter"),                // q8
		mk("Laptop", "Case", "KeyboardProtector"),      // q9
		mk("Laptop", "Case", "Mouse"),                  // q10
		mk("Laptop", "Case", "IPhone", "ScreenShield"), // q11
	}
	var w query.Workload
	for i, p := range queries {
		w = append(w, &query.Query{
			ID:      i,
			Name:    fmt.Sprintf("q%d", i+8),
			Pattern: p,
			Agg:     query.AggSpec{Kind: query.CountStar},
			Window:  win,
			GroupBy: true,
		})
	}
	return &PaperWorkload{
		Reg:      reg,
		Workload: w,
		Patterns: []query.Pattern{mk("Laptop", "Case")},
	}
}
