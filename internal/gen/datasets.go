package gen

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/event"
)

// The paper evaluates three data sets (§8.1). None is shipped with this
// repository — the NYC Taxi set is 330 GB of proprietary-ish trip records
// and Linear Road is an external benchmark generator — so each is
// substituted with a synthetic stream that preserves what the executors
// and the cost model actually consume: event types, per-type rates,
// grouping keys, and events per window. DESIGN.md §3 records the
// substitutions.

// TaxiConfig parameterizes the NYC Taxi & Uber stand-in: position reports
// from vehicles over street segments with Zipf-skewed route popularity.
type TaxiConfig struct {
	// Streets is the number of street-segment event types.
	Streets int
	// Vehicles is the number of distinct vehicles (group keys).
	Vehicles int
	// Events is the total stream length.
	Events int
	// Rate is the constant event rate (events/second).
	Rate float64
	// Skew is the Zipf exponent of street popularity (0 = uniform).
	Skew float64
	Seed int64
}

// Taxi generates the taxi stand-in stream, interning street types into reg.
func Taxi(reg *event.Registry, cfg TaxiConfig) event.Stream {
	if cfg.Streets <= 0 {
		cfg.Streets = 20
	}
	if cfg.Vehicles <= 0 {
		cfg.Vehicles = 50
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 3000
	}
	types := internN(reg, "St", cfg.Streets)
	return Generate(StreamConfig{
		Types:       types,
		TypeWeights: ZipfWeights(len(types), cfg.Skew),
		NumKeys:     cfg.Vehicles,
		Events:      cfg.Events,
		StartRate:   cfg.Rate,
		EndRate:     cfg.Rate,
		ValRange:    60, // speed / fare scale
		Seed:        cfg.Seed,
	})
}

// LinearRoadConfig parameterizes the Linear Road benchmark stand-in: cars
// on an expressway emit position reports; the event rate ramps up linearly
// over the run, as in the benchmark's 3-hour simulation.
type LinearRoadConfig struct {
	// Segments is the number of expressway segments (event types).
	Segments int
	// Cars is the number of distinct cars (group keys).
	Cars int
	// Events is the total stream length.
	Events int
	// StartRate/EndRate define the linear ramp (the benchmark goes from a
	// few dozen to ~4k events/second).
	StartRate, EndRate float64
	Seed               int64
}

// LinearRoad generates the Linear Road stand-in stream.
func LinearRoad(reg *event.Registry, cfg LinearRoadConfig) event.Stream {
	if cfg.Segments <= 0 {
		cfg.Segments = 20
	}
	if cfg.Cars <= 0 {
		cfg.Cars = 100
	}
	if cfg.StartRate <= 0 {
		cfg.StartRate = 50
	}
	if cfg.EndRate <= 0 {
		cfg.EndRate = 4000
	}
	types := internN(reg, "Seg", cfg.Segments)
	return Generate(StreamConfig{
		Types:     types,
		NumKeys:   cfg.Cars,
		Events:    cfg.Events,
		StartRate: cfg.StartRate,
		EndRate:   cfg.EndRate,
		ValRange:  120, // speed
		Seed:      cfg.Seed,
	})
}

// EcommerceConfig parameterizes the e-commerce stand-in: purchases of 50
// items by 20 customers at 3k events/second (§8.1), uniformly random item
// and customer identifiers.
type EcommerceConfig struct {
	Items     int
	Customers int
	Events    int
	Rate      float64
	Seed      int64
}

// Ecommerce generates the e-commerce stand-in stream.
func Ecommerce(reg *event.Registry, cfg EcommerceConfig) event.Stream {
	if cfg.Items <= 0 {
		cfg.Items = 50
	}
	if cfg.Customers <= 0 {
		cfg.Customers = 20
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 3000
	}
	types := internN(reg, "Item", cfg.Items)
	return Generate(StreamConfig{
		Types:     types,
		NumKeys:   cfg.Customers,
		Events:    cfg.Events,
		StartRate: cfg.Rate,
		EndRate:   cfg.Rate,
		ValRange:  500, // price
		Seed:      cfg.Seed,
	})
}

// internN interns n types named prefix1..prefixN and returns them.
func internN(reg *event.Registry, prefix string, n int) []event.Type {
	types := make([]event.Type, n)
	for i := range types {
		types[i] = reg.Intern(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return types
}
