package gen

import (
	"testing"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/query"
)

func TestTrafficWorkloadMatchesTable1(t *testing.T) {
	tr := Traffic()
	if err := tr.Workload.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Workload) != 7 {
		t.Fatalf("workload size = %d, want 7", len(tr.Workload))
	}
	sharable := core.SharablePatterns(tr.Workload)
	if len(sharable) != 7 {
		t.Fatalf("sharable patterns = %d, want 7 (Table 1)", len(sharable))
	}
	if len(tr.Patterns) != 7 || len(tr.Weights) != 7 {
		t.Fatal("paper patterns/weights incomplete")
	}
	// Every p1..p7 is among the detected sharable patterns.
	keys := make(map[string]bool)
	for _, sp := range sharable {
		keys[sp.Pattern.Key()] = true
	}
	for i, p := range tr.Patterns {
		if !keys[p.Key()] {
			t.Errorf("p%d = %s not detected", i+1, p.Format(tr.Reg))
		}
	}
}

func TestPurchasesWorkload(t *testing.T) {
	pw := Purchases()
	if err := pw.Workload.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pw.Workload) != 4 {
		t.Fatalf("workload size = %d, want 4", len(pw.Workload))
	}
	// (Laptop, Case) is contained in all four queries.
	lc := pw.Patterns[0]
	for _, q := range pw.Workload {
		if !q.Pattern.Contains(lc) {
			t.Errorf("%s does not contain (Laptop, Case)", q.Label())
		}
	}
}

func TestGenerateStreamOrdered(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 5)
	s := Generate(StreamConfig{Types: types, NumKeys: 4, Events: 5000, StartRate: 100, EndRate: 4000, Seed: 1})
	if len(s) != 5000 {
		t.Fatalf("len = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All types appear.
	seen := make(map[event.Type]bool)
	for _, e := range s {
		seen[e.Type] = true
		if e.Key < 0 || e.Key >= 4 {
			t.Fatalf("key out of range: %d", e.Key)
		}
	}
	if len(seen) != 5 {
		t.Errorf("types seen = %d, want 5", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 3)
	cfg := StreamConfig{Types: types, Events: 100, Seed: 42}
	a, b := Generate(cfg), Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed runs", i)
		}
	}
}

func TestGenerateRampsRate(t *testing.T) {
	reg := event.NewRegistry()
	types := internN(reg, "T", 2)
	s := Generate(StreamConfig{Types: types, Events: 10000, StartRate: 10, EndRate: 1000, Seed: 3})
	// Early inter-arrival gaps must be much larger than late ones.
	early := s[100].Time - s[0].Time
	late := s[9999].Time - s[9899].Time
	if early < 5*late {
		t.Errorf("rate not ramping: early gap %d, late gap %d", early, late)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	u := ZipfWeights(3, 0)
	if u[0] != u[1] || u[1] != u[2] {
		t.Errorf("s=0 should be uniform: %v", u)
	}
}

func TestDatasetGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*event.Registry) event.Stream
	}{
		{"taxi", func(r *event.Registry) event.Stream {
			return Taxi(r, TaxiConfig{Events: 2000, Skew: 1.2, Seed: 1})
		}},
		{"linearroad", func(r *event.Registry) event.Stream {
			return LinearRoad(r, LinearRoadConfig{Events: 2000, Seed: 1})
		}},
		{"ecommerce", func(r *event.Registry) event.Stream {
			return Ecommerce(r, EcommerceConfig{Events: 2000, Seed: 1})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := event.NewRegistry()
			s := tc.gen(reg)
			if len(s) != 2000 {
				t.Fatalf("len = %d", len(s))
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if reg.Count() == 0 {
				t.Error("no types interned")
			}
		})
	}
}

func TestGenWorkloadProperties(t *testing.T) {
	reg := event.NewRegistry()
	cfg := WorkloadConfig{NumQueries: 20, PatternLen: 10, Seed: 5, GroupBy: true}
	w, types := GenWorkload(reg, cfg)
	if len(w) != 20 {
		t.Fatalf("queries = %d", len(w))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range w {
		if q.Pattern.Length() != 10 {
			t.Errorf("%s pattern length = %d, want 10", q.Label(), q.Pattern.Length())
		}
		if q.Pattern.HasDuplicateTypes() {
			t.Errorf("%s has duplicate types", q.Label())
		}
	}
	// Sharing must exist: at least one sharable pattern.
	cands := core.FindCandidates(w)
	if len(cands) == 0 {
		t.Error("generated workload has no sharable patterns")
	}
	// All pattern types are covered by the returned alphabet.
	alpha := make(map[event.Type]bool)
	for _, tp := range types {
		alpha[tp] = true
	}
	for tp := range w.Types() {
		if !alpha[tp] {
			t.Errorf("type %d missing from alphabet", tp)
		}
	}
}

func TestGenWorkloadDeterministic(t *testing.T) {
	regA, regB := event.NewRegistry(), event.NewRegistry()
	cfg := WorkloadConfig{NumQueries: 10, PatternLen: 8, Seed: 11}
	wa, _ := GenWorkload(regA, cfg)
	wb, _ := GenWorkload(regB, cfg)
	for i := range wa {
		if !wa[i].Pattern.Equal(wb[i].Pattern) {
			t.Fatalf("query %d differs across same-seed runs", i)
		}
	}
}

func TestGenWorkloadPatternLengthSweep(t *testing.T) {
	for _, plen := range []int{4, 10, 20, 30} {
		reg := event.NewRegistry()
		w, _ := GenWorkload(reg, WorkloadConfig{NumQueries: 8, PatternLen: plen, Seed: 2})
		for _, q := range w {
			if q.Pattern.Length() != plen {
				t.Errorf("plen=%d: got %d", plen, q.Pattern.Length())
			}
		}
	}
}

func TestStreamForWorkload(t *testing.T) {
	reg := event.NewRegistry()
	w, types := GenWorkload(reg, WorkloadConfig{NumQueries: 6, PatternLen: 6, Seed: 9})
	nChunk := len(types) - 4*6 // FillerPool default is 4*PatternLen
	s := StreamForWorkload(types, nChunk, 3000, 5, 1000, 3, 7)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = w
	// Chunk types (hot) should be more frequent than fillers on average.
	counts := make(map[event.Type]int)
	for _, e := range s {
		counts[e.Type]++
	}
	var hot, cold, nHot, nCold float64
	for i, tp := range types {
		if i < nChunk {
			hot += float64(counts[tp])
			nHot++
		} else {
			cold += float64(counts[tp])
			nCold++
		}
	}
	if hot/nHot <= cold/nCold {
		t.Errorf("hot types not hotter: %.1f vs %.1f", hot/nHot, cold/nCold)
	}
}

func TestCorridorMode(t *testing.T) {
	reg := event.NewRegistry()
	cfg := WorkloadConfig{
		Mode: ModeCorridor, NumQueries: 12, PatternLen: 8,
		CorridorLen: 10, SliceLen: 4, Seed: 3,
	}
	w, types := GenWorkload(reg, cfg)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(types) != 10+4*8 {
		t.Errorf("alphabet = %d types", len(types))
	}
	// Every query embeds a contiguous corridor slice of length 4.
	corridor := types[:10]
	for _, q := range w {
		found := false
		for start := 0; start+4 <= 10; start++ {
			sub := query.Pattern(corridor[start : start+4])
			if q.Pattern.Contains(sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s has no corridor slice: %v", q.Label(), q.Pattern.Format(reg))
		}
		if q.Pattern.HasDuplicateTypes() {
			t.Errorf("%s repeats a type", q.Label())
		}
	}
	// Corridor mode must produce conflicts (overlapping slices).
	cands := core.FindCandidates(w)
	if len(cands) < 3 {
		t.Errorf("corridor produced only %d candidates", len(cands))
	}
}

func TestCorridorVarySliceLen(t *testing.T) {
	reg := event.NewRegistry()
	cfg := WorkloadConfig{
		Mode: ModeCorridor, NumQueries: 40, PatternLen: 8,
		CorridorLen: 10, SliceLen: 6, VarySliceLen: true, Seed: 5,
	}
	w, _ := GenWorkload(reg, cfg)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// All patterns still have the requested total length.
	for _, q := range w {
		if q.Pattern.Length() != 8 {
			t.Fatalf("%s length = %d", q.Label(), q.Pattern.Length())
		}
	}
}

func TestDuplicateFractionAndUniquePatterns(t *testing.T) {
	reg := event.NewRegistry()
	w, _ := GenWorkload(reg, WorkloadConfig{
		NumQueries: 30, PatternLen: 6, UniquePatterns: 5, Seed: 7,
	})
	uniq := map[string]bool{}
	for _, q := range w {
		uniq[q.Pattern.Key()] = true
	}
	if len(uniq) > 5 {
		t.Errorf("unique patterns = %d, want <= 5", len(uniq))
	}

	w2, _ := GenWorkload(reg, WorkloadConfig{
		NumQueries: 30, PatternLen: 6, DuplicateFraction: 1.0, Seed: 7,
	})
	uniq2 := map[string]bool{}
	for _, q := range w2 {
		uniq2[q.Pattern.Key()] = true
	}
	if len(uniq2) != 1 {
		t.Errorf("DuplicateFraction=1 produced %d unique patterns", len(uniq2))
	}
}

func TestTrafficReplicas(t *testing.T) {
	reg := event.NewRegistry()
	w, types, weights := TrafficReplicas(reg, 3)
	if len(w) != 21 {
		t.Fatalf("queries = %d, want 21", len(w))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(types) != 18 || len(weights) != 18 {
		t.Fatalf("types/weights = %d/%d, want 18", len(types), len(weights))
	}
	// Neighborhoods are type-disjoint: candidates never span copies.
	for _, c := range core.FindCandidates(w) {
		name := reg.Name(c.Pattern[0])
		prefix := name[:2] // "N1", "N2", ...
		for _, tp := range c.Pattern {
			if got := reg.Name(tp)[:2]; got != prefix {
				t.Fatalf("candidate spans neighborhoods: %s", c.Pattern.Format(reg))
			}
		}
	}
	// Each neighborhood reproduces the Table 1 candidate structure:
	// 7 sharable patterns per copy.
	if got := len(core.FindCandidates(w)); got != 21 {
		t.Errorf("candidates = %d, want 21 (7 per neighborhood)", got)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if s := Generate(StreamConfig{}); s != nil {
		t.Error("empty config produced events")
	}
	reg := event.NewRegistry()
	types := internN(reg, "T", 1)
	s := Generate(StreamConfig{Types: types, Events: 10, Seed: 1})
	if len(s) != 10 {
		t.Errorf("len = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}
