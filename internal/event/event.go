// Package event defines the Sharon data model: typed, time-stamped events
// on a totally ordered input stream (paper §2.1).
//
// Time is a linearly ordered set of non-negative int64 "ticks". Sequence
// semantics (Definition 1) require strictly increasing timestamps between
// the events of a match, so streams in this repository carry strictly
// increasing timestamps; generators emitting k events per second spread
// them over sub-second ticks (see TicksPerSecond).
package event

import (
	"fmt"
	"sort"
)

// TicksPerSecond is the default resolution of event timestamps. The paper
// stamps events in seconds but evaluates streams of thousands of events per
// second; with millisecond ticks the stream stays strictly ordered.
const TicksPerSecond = 1000

// Type identifies an event type (e.g. a street segment or an item kind).
// Types are interned in a Registry; the zero value is invalid.
type Type int32

// NoType is the invalid zero Type.
const NoType Type = 0

// GroupKey identifies the grouping-attribute value of an event (e.g. the
// vehicle or customer identifier of the paper's [vehicle] predicate).
type GroupKey int64

// Event is a message indicating that something of interest happened.
// Events are value types; executors never retain pointers into the stream.
type Event struct {
	// Time is the event timestamp in ticks, assigned by the source.
	Time int64
	// Type is the interned event type.
	Type Type
	// Key is the grouping key (vehicle id, customer id, ...). Queries
	// without GROUP-BY see all events under a single key.
	Key GroupKey
	// Val is the primary numeric attribute used by SUM/MIN/MAX/AVG
	// (e.g. price or speed).
	Val float64
}

// String implements fmt.Stringer for debugging output.
func (e Event) String() string {
	return fmt.Sprintf("e(type=%d t=%d key=%d val=%g)", e.Type, e.Time, e.Key, e.Val)
}

// Registry interns event type names. It is not safe for concurrent
// mutation; build it once before streaming.
type Registry struct {
	names []string // names[i] is the name of Type(i+1)
	ids   map[string]Type
}

// NewRegistry returns an empty type registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]Type)}
}

// Intern returns the Type for name, creating it on first use.
func (r *Registry) Intern(name string) Type {
	if t, ok := r.ids[name]; ok {
		return t
	}
	r.names = append(r.names, name)
	t := Type(len(r.names))
	r.ids[name] = t
	return t
}

// Lookup returns the Type for name, or NoType if it was never interned.
func (r *Registry) Lookup(name string) Type {
	return r.ids[name]
}

// Name returns the name of t, or "?" for unknown types.
func (r *Registry) Name(t Type) string {
	if t < 1 || int(t) > len(r.names) {
		return "?"
	}
	return r.names[t-1]
}

// Count reports the number of interned types; valid Type values are
// 1..Count() (types are 1-based). Executors use it to size dense
// per-type dispatch tables indexed by Type.
func (r *Registry) Count() int { return len(r.names) }

// Ordered returns the interned names in interning order — Ordered()[i]
// is the name of Type(i+1). The durability layer records this order in
// checkpoints so WAL events, which carry interned Type values, decode
// against identical ids after a restart.
func (r *Registry) Ordered() []string {
	return append([]string(nil), r.names...)
}

// Names returns all interned names sorted alphabetically.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	sort.Strings(out)
	return out
}

// Stream is an ordered finite sequence of events, typically produced by a
// generator and replayed through an executor. Live sources can implement
// Source instead.
type Stream []Event

// Source yields events in strictly increasing time order. Next returns
// ok=false when the stream is exhausted.
type Source interface {
	Next() (Event, bool)
}

// sliceSource adapts a Stream to the Source interface.
type sliceSource struct {
	s Stream
	i int
}

// NewSource returns a Source replaying s.
func NewSource(s Stream) Source { return &sliceSource{s: s} }

func (ss *sliceSource) Next() (Event, bool) {
	if ss.i >= len(ss.s) {
		return Event{}, false
	}
	e := ss.s[ss.i]
	ss.i++
	return e, true
}

// Validate checks that the stream is strictly ordered by time and that all
// timestamps are non-negative. It returns a descriptive error for the first
// violation.
func (s Stream) Validate() error {
	var prev int64 = -1
	for i, e := range s {
		if e.Time < 0 {
			return fmt.Errorf("event %d: negative timestamp %d", i, e.Time)
		}
		if e.Time <= prev {
			return fmt.Errorf("event %d: timestamp %d not strictly after %d", i, e.Time, prev)
		}
		if e.Type == NoType {
			return fmt.Errorf("event %d: missing type", i)
		}
		prev = e.Time
	}
	return nil
}

// Rates computes the observed rate (events per second of stream time) of
// each event type present in the stream. The result feeds the optimizer's
// cost model (paper Eq. 1). An empty or instantaneous stream yields counts
// interpreted over one second.
func (s Stream) Rates() map[Type]float64 {
	counts := make(map[Type]float64)
	for _, e := range s {
		counts[e.Type]++
	}
	if len(s) == 0 {
		return counts
	}
	span := s[len(s)-1].Time - s[0].Time + 1
	secs := float64(span) / TicksPerSecond
	if secs < 1 {
		secs = 1
	}
	for t := range counts {
		counts[t] /= secs
	}
	return counts
}
