package event

import (
	"testing"
)

func TestRegistryInternLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("OakSt")
	b := r.Intern("MainSt")
	if a == b {
		t.Fatalf("distinct names interned to same type %v", a)
	}
	if got := r.Intern("OakSt"); got != a {
		t.Errorf("re-intern OakSt = %v, want %v", got, a)
	}
	if got := r.Lookup("MainSt"); got != b {
		t.Errorf("Lookup(MainSt) = %v, want %v", got, b)
	}
	if got := r.Lookup("missing"); got != NoType {
		t.Errorf("Lookup(missing) = %v, want NoType", got)
	}
	if got := r.Name(a); got != "OakSt" {
		t.Errorf("Name(%v) = %q, want OakSt", a, got)
	}
	if got := r.Name(NoType); got != "?" {
		t.Errorf("Name(NoType) = %q, want ?", got)
	}
	if got := r.Name(Type(99)); got != "?" {
		t.Errorf("Name(99) = %q, want ?", got)
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d, want 2", r.Count())
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Intern("b")
	r.Intern("a")
	r.Intern("c")
	names := r.Names()
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestStreamValidate(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("A")
	tests := []struct {
		name    string
		s       Stream
		wantErr bool
	}{
		{"empty", Stream{}, false},
		{"ordered", Stream{{Time: 1, Type: a}, {Time: 2, Type: a}}, false},
		{"equal times", Stream{{Time: 1, Type: a}, {Time: 1, Type: a}}, true},
		{"decreasing", Stream{{Time: 2, Type: a}, {Time: 1, Type: a}}, true},
		{"negative", Stream{{Time: -1, Type: a}}, true},
		{"no type", Stream{{Time: 1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestStreamRates(t *testing.T) {
	r := NewRegistry()
	a, b := r.Intern("A"), r.Intern("B")
	// 3 A's and 1 B over 2 seconds of stream time.
	s := Stream{
		{Time: 0, Type: a},
		{Time: 500, Type: b},
		{Time: 1000, Type: a},
		{Time: 2*TicksPerSecond - 1, Type: a},
	}
	rates := s.Rates()
	if got := rates[a]; got != 1.5 {
		t.Errorf("rate(A) = %v, want 1.5", got)
	}
	if got := rates[b]; got != 0.5 {
		t.Errorf("rate(B) = %v, want 0.5", got)
	}
}

func TestStreamRatesShortStream(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("A")
	s := Stream{{Time: 5, Type: a}, {Time: 6, Type: a}}
	// Span below a second: counts interpreted per one second.
	if got := s.Rates()[a]; got != 2 {
		t.Errorf("rate(A) = %v, want 2", got)
	}
	if got := (Stream{}).Rates(); len(got) != 0 {
		t.Errorf("empty stream rates = %v, want empty", got)
	}
}

func TestSource(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("A")
	s := Stream{{Time: 1, Type: a}, {Time: 2, Type: a}}
	src := NewSource(s)
	var n int
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.Time != int64(n+1) {
			t.Fatalf("event %d time = %d", n, e.Time)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d events, want 2", n)
	}
	if _, ok := src.Next(); ok {
		t.Error("Next after exhaustion reported ok")
	}
}
