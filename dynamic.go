package sharon

import (
	"fmt"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/exec"
)

// DynamicOptions configures NewDynamicSystem (paper §7.4).
type DynamicOptions struct {
	// OnResult receives every aggregate as it is emitted; nil collects.
	OnResult func(Result)
	// EmitEmpty also emits zero results for windows without matches.
	EmitEmpty bool
	// CheckEvery is the interval in ticks between rate-drift checks
	// (default: one window slide).
	CheckEvery int64
	// DriftThreshold is the relative rate change that triggers
	// re-optimization (default 0.5).
	DriftThreshold float64
	// OnMigrate observes plan changes.
	OnMigrate func(at int64, old, new Plan)
}

// DynamicSystem evaluates a workload while monitoring event rates at
// runtime: when rates drift, it re-runs the Sharon optimizer and migrates
// to the new sharing plan without losing or corrupting window results
// (paper §7.4). Window results are identical to a static execution.
type DynamicSystem struct {
	d       *exec.Dynamic
	collect bool
}

// NewDynamicSystem builds a dynamic system with an initial plan optimized
// for the supplied rates (use MeasureRates on a warm-up sample).
func NewDynamicSystem(w Workload, rates Rates, opts DynamicOptions) (*DynamicSystem, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	collect := opts.OnResult == nil
	cfg := exec.DynamicConfig{
		Options: exec.Options{
			OnResult: opts.OnResult,
			Collect:  collect,
		},
		CheckEvery:     opts.CheckEvery,
		DriftThreshold: opts.DriftThreshold,
	}
	cfg.EmitEmpty = opts.EmitEmpty
	if opts.OnMigrate != nil {
		cfg.OnMigrate = func(at int64, old, new core.Plan) { opts.OnMigrate(at, old, new) }
	}
	d, err := exec.NewDynamic(w, rates, cfg)
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	return &DynamicSystem{d: d, collect: collect}, nil
}

// Process feeds the next event (strictly time-ordered).
func (s *DynamicSystem) Process(e Event) error { return s.d.Process(e) }

// ProcessAll replays a stream and flushes.
func (s *DynamicSystem) ProcessAll(stream Stream) error {
	for _, e := range stream {
		if err := s.d.Process(e); err != nil {
			return err
		}
	}
	return s.d.Flush()
}

// Flush closes all remaining windows.
func (s *DynamicSystem) Flush() error { return s.d.Flush() }

// Results returns collected results (only when OnResult was nil).
func (s *DynamicSystem) Results() []Result {
	if !s.collect {
		return nil
	}
	return s.d.Results()
}

// Plan returns the currently installed sharing plan.
func (s *DynamicSystem) Plan() Plan { return s.d.Plan() }

// Migrations reports how many plan changes were installed.
func (s *DynamicSystem) Migrations() int { return s.d.Migrations }
