package sharon

import (
	"fmt"
	"runtime"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/exec"
)

// BurstState is the burst detector's debounced classification of the
// stream (adaptive mode).
type BurstState = exec.BurstState

// BurstConfig tunes the adaptive mode's burst detector; zero values
// select the defaults.
type BurstConfig = exec.BurstConfig

// Burst-detector states.
const (
	Valley = exec.Valley
	Burst  = exec.Burst
)

// DynamicOptions configures NewDynamicSystem (paper §7.4).
type DynamicOptions struct {
	// OnResult receives every aggregate as it is emitted; nil collects.
	OnResult func(Result)
	// EmitEmpty also emits zero results for windows without matches.
	EmitEmpty bool
	// CheckEvery is the interval in ticks between rate-drift checks
	// (default: one window slide).
	CheckEvery int64
	// DriftThreshold is the relative rate change that triggers
	// re-optimization (default 0.5).
	DriftThreshold float64
	// OnMigrate observes plan changes. With Parallelism > 1 each shard
	// migrates independently; invocations are serialized but may arrive
	// from different shards at different stream times.
	OnMigrate func(at int64, old, new Plan)
	// Parallelism selects the number of shard workers, as in
	// Options.Parallelism: events are hash-partitioned by group key and
	// each shard runs its own rate monitor and migration protocol
	// (results are plan-invariant, so this does not affect output).
	// 0 = auto (GOMAXPROCS for grouped workloads, sequential otherwise),
	// 1 = always sequential.
	Parallelism int

	// Adaptive switches the system from drift-triggered re-optimization
	// to per-burst share-vs-split decisions: a burst detector classifies
	// the arrival rate each check interval, confirmed bursts install the
	// shared plan, and confirmed valleys split back to per-query
	// execution. Hand-offs reuse the migration protocol, so output stays
	// identical to a static execution either way. With Parallelism > 1
	// each shard detects and decides independently.
	Adaptive bool
	// Burst tunes the adaptive detector (zero values select defaults).
	Burst BurstConfig
	// OnDecision observes each confirmed share/split transition after
	// its plan installs (share: len(plan) > 0). Like OnMigrate,
	// invocations are serialized across shards.
	OnDecision func(at int64, state BurstState, plan Plan)
}

// DynamicSystem evaluates a workload while monitoring event rates at
// runtime: when rates drift, it re-runs the Sharon optimizer and migrates
// to the new sharing plan without losing or corrupting window results
// (paper §7.4). Window results are identical to a static execution.
type DynamicSystem struct {
	executor exec.Executor
	shards   []*exec.Dynamic // parallel path: one Dynamic per shard
	seq      *exec.Dynamic   // sequential path
	// initialPlan is the construction-time plan, served by Plan() on the
	// parallel path until the shards become readable at Flush.
	initialPlan Plan
	collect     bool
}

// NewDynamicSystem builds a dynamic system with an initial plan optimized
// for the supplied rates (use MeasureRates on a warm-up sample).
func NewDynamicSystem(w Workload, rates Rates, opts DynamicOptions) (*DynamicSystem, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("sharon: empty workload")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	collect := opts.OnResult == nil
	cfg := exec.DynamicConfig{
		Options: exec.Options{
			OnResult: opts.OnResult,
			Collect:  collect,
		},
		CheckEvery:     opts.CheckEvery,
		DriftThreshold: opts.DriftThreshold,
		Adaptive:       opts.Adaptive,
		Burst:          opts.Burst,
	}
	cfg.EmitEmpty = opts.EmitEmpty
	if opts.OnMigrate != nil {
		cfg.OnMigrate = func(at int64, old, new core.Plan) { opts.OnMigrate(at, old, new) }
	}
	if opts.OnDecision != nil {
		cfg.OnDecision = func(at int64, state exec.BurstState, plan core.Plan) { opts.OnDecision(at, state, plan) }
	}
	sys := &DynamicSystem{collect: collect}
	if workers := resolveParallelism(opts.Parallelism, w[0].GroupBy, opts.OnResult != nil); workers > 1 {
		p, dyns, err := exec.NewParallelDynamic(w, rates, workers, cfg)
		if err != nil {
			return nil, fmt.Errorf("sharon: %w", err)
		}
		sys.executor, sys.shards = p, dyns
		// Safe: the workers have not been sent any message yet, so no
		// goroutine touches shard state before this read.
		sys.initialPlan = dyns[0].Plan()
		reclaimOnDrop(sys, p)
		return sys, nil
	}
	d, err := exec.NewDynamic(w, rates, cfg)
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	sys.executor, sys.seq = d, d
	return sys, nil
}

// Process feeds the next event (strictly time-ordered).
func (s *DynamicSystem) Process(e Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Process(e)
}

// FeedBatch feeds a batch of strictly time-ordered events.
func (s *DynamicSystem) FeedBatch(events []Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return feedBatch(s.executor, events)
}

// ProcessAll replays a stream and flushes. On a feed error the run is
// stopped without emitting partial windows.
func (s *DynamicSystem) ProcessAll(stream Stream) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	if err := s.FeedBatch(stream); err != nil {
		stopParallel(s.executor)
		return err
	}
	return s.Flush()
}

// Flush closes all remaining windows.
func (s *DynamicSystem) Flush() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Flush()
}

// AdvanceWatermark closes every window ending at or before t on the
// active engines and emits its results without consuming an event; see
// System.AdvanceWatermark for the full contract. Rate accounting is
// untouched: drift is measured over observed events only.
func (s *DynamicSystem) AdvanceWatermark(t int64) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	advanceWatermark(s.executor, t)
}

// Close releases the executor without emitting the windows still open;
// see System.Close. Idempotent, and safe after Flush.
func (s *DynamicSystem) Close() {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	stopParallel(s.executor)
}

// Results returns collected results, sorted by query, window, group.
// When an OnResult sink is attached the system does not retain results
// and Results always returns nil (see System.Results).
func (s *DynamicSystem) Results() []Result { return collectedResults(s.executor, s.collect) }

// ResultCount reports the number of aggregates emitted so far.
func (s *DynamicSystem) ResultCount() int64 { return s.executor.ResultCount() }

// PeakMemoryStates reports the executor's peak number of live aggregate
// states. On the parallel path the shards' peaks are summed at Flush
// time (0 before).
func (s *DynamicSystem) PeakMemoryStates() int64 { return s.executor.PeakLiveStates() }

// shardsReadable reports whether the shard Dynamics may be inspected:
// always sequentially, only after Flush/Stop on the parallel path
// (worker goroutines own the shards while the run is live).
func (s *DynamicSystem) shardsReadable() bool {
	if s.seq != nil {
		return true
	}
	p, ok := s.executor.(*exec.Parallel)
	return ok && p.Flushed()
}

// Plan returns the currently installed sharing plan. On the parallel
// path shards migrate independently; Plan reports the initial plan
// while the run is live and shard 0's final plan after Flush.
func (s *DynamicSystem) Plan() Plan {
	if s.seq != nil {
		return s.seq.Plan()
	}
	if !s.shardsReadable() {
		return s.initialPlan
	}
	return s.shards[0].Plan()
}

// Migrations reports how many plan changes were installed, summed
// across shards on the parallel path, where the count is available only
// after Flush (0 before).
func (s *DynamicSystem) Migrations() int {
	if s.seq != nil {
		return s.seq.Migrations
	}
	if !s.shardsReadable() {
		return 0
	}
	n := 0
	for _, d := range s.shards {
		n += d.Migrations
	}
	return n
}

// ParallelStats reports the parallel executor's counters; the zero value
// when the system runs sequentially.
func (s *DynamicSystem) ParallelStats() ParallelStats { return parallelStats(s.executor) }

// BurstState reports the adaptive detector's current debounced state
// (Valley when not adaptive). On the parallel path shards detect
// independently; BurstState reports Valley while the run is live and
// shard 0's final state after Flush — observe OnDecision for live
// transitions.
func (s *DynamicSystem) BurstState() BurstState {
	if s.seq != nil {
		return s.seq.BurstState()
	}
	if !s.shardsReadable() {
		return Valley
	}
	return s.shards[0].BurstState()
}

// ShareTransitions and SplitTransitions count the adaptive mode's
// confirmed burst→shared and valley→split plan installs, summed across
// shards on the parallel path (available only after Flush there, like
// Migrations).
func (s *DynamicSystem) ShareTransitions() int {
	return s.sumShards(func(d *exec.Dynamic) int { return d.ShareTransitions })
}

// SplitTransitions counts confirmed valley→split plan installs; see
// ShareTransitions.
func (s *DynamicSystem) SplitTransitions() int {
	return s.sumShards(func(d *exec.Dynamic) int { return d.SplitTransitions })
}

// PrunedStarts reports the state reduction's dead-record prune count —
// START records recycled at birth because no open window could still
// observe them — cumulative across plan migrations, summed across
// shards on the parallel path (0 there until Flush).
func (s *DynamicSystem) PrunedStarts() int64 {
	if s.seq != nil {
		return s.seq.PrunedStarts()
	}
	if !s.shardsReadable() {
		return 0
	}
	var n int64
	for _, d := range s.shards {
		n += d.PrunedStarts()
	}
	return n
}

// sumShards folds a per-Dynamic counter across the live executors,
// honoring the parallel path's readability rules.
func (s *DynamicSystem) sumShards(f func(*exec.Dynamic) int) int {
	if s.seq != nil {
		return f(s.seq)
	}
	if !s.shardsReadable() {
		return 0
	}
	n := 0
	for _, d := range s.shards {
		n += f(d)
	}
	return n
}
