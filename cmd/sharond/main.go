// Command sharond serves a Sharon workload over the network: batched
// NDJSON event ingestion with bounded-queue backpressure, push-based
// SSE result subscriptions fed as windows close, watermark punctuation
// for unbounded streams, live query registration (optimizer re-runs
// with plan diffs), /metrics, /healthz, and graceful drain on SIGTERM.
//
// With -data-dir the server is durable: applied ingest steps go to a
// CRC-framed write-ahead log before they reach the engine, the engine
// state is checkpointed on -checkpoint-interval, and a restart (crash
// or SIGTERM) recovers the exact serving state — subscriptions resume
// with /subscribe?after=<seq>, clients resume sending past the
// published watermark. /healthz reports "recovering" (503) while the
// WAL tail replays.
//
// Usage:
//
//	sharond                                  # default demo workload on :8080
//	sharond -addr :9000 -parallelism 4
//	sharond -data-dir /var/lib/sharond -fsync always
//	sharond -query 'RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [k] WITHIN 4s SLIDE 1s' \
//	        -query 'RETURN COUNT(*) PATTERN SEQ(B, C) WHERE [k] WITHIN 4s SLIDE 1s'
//	sharond -queries-file workload.sase      # one query per line, # comments
//
// Cluster mode (-role router) turns sharond into the front of a fleet:
// events are consistent-hash partitioned by group key across N durable
// workers, watermarks fan out to all of them, and the workers' result
// streams merge back into the byte-identical single-node order. Workers
// are plain durable sharonds (-role worker is an alias of the default
// single-node role; the /cluster/* hand-off endpoints are always
// served):
//
//	sharond -role worker -addr :9001 -data-dir /var/lib/sharond-1 &
//	sharond -role worker -addr :9002 -data-dir /var/lib/sharond-2 &
//	sharond -role router -addr :8080 \
//	        -worker http://127.0.0.1:9001=/var/lib/sharond-1 \
//	        -worker http://127.0.0.1:9002=/var/lib/sharond-2
//
// See the README's "Running the server", "Durability & recovery", and
// "Clustering" sections for the wire formats and the rebalance
// protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sharon-project/sharon/internal/cluster"
	"github.com/sharon-project/sharon/internal/persist"
	"github.com/sharon-project/sharon/internal/server"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var queries multiFlag
	var workers multiFlag
	var (
		role        = flag.String("role", "single", "single | worker | router (worker is single with a cluster-facing name; router fronts a worker fleet)")
		addr        = flag.String("addr", ":8080", "listen address")
		queriesFile = flag.String("queries-file", "", "file with one query per line (# comments); overrides -query")
		parallelism = flag.Int("parallelism", 1, "engine shard workers (1 = sequential)")
		dynamic     = flag.Bool("dynamic", false, "back the engine with a DynamicSystem (re-optimize on rate drift)")
		adaptive    = flag.Bool("adaptive", false, "burst-adaptive sharing: share bursts, split valleys (implies -dynamic)")
		emitEmpty   = flag.Bool("emit-empty", false, "also push zero results for windows without matches")
		maxBatch    = flag.Int64("max-batch-bytes", 8<<20, "ingest request body limit")
		queue       = flag.Int("queue", 256, "ingest queue bound in batches (full queue = 429)")
		subBuf      = flag.Int("sub-buffer", 4096, "deprecated (ignored): delivery is cursor-based over the shared broadcast log")
		fanoutW     = flag.Int("fanout-writers", 0, "broadcast fan-out writer pool size (0 = default 4)")
		replayBuf   = flag.Int("replay-buffer", 16384, "retained results for /subscribe?after= resume")
		dataDir     = flag.String("data-dir", "", "enable durability: WAL + checkpoints under this directory")
		ckptEvery   = flag.Duration("checkpoint-interval", 10*time.Second, "periodic checkpoint interval (with -data-dir)")
		fsyncMode   = flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
		fsyncEvery  = flag.Duration("fsync-every", time.Second, "sync period for -fsync interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 16<<20, "WAL segment rotation size")
		vnodes      = flag.Int("vnodes", 0, "router: consistent-hash virtual nodes per worker (0 = default)")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "router: worker health probe interval")
		barrierTo   = flag.Duration("barrier-timeout", 30*time.Second, "router: rebalance barrier timeout")
		occHigh     = flag.Int64("occupancy-high", 0, "router: auto-join a standby worker when any member's live-group gauge exceeds this (0 disables autoscaling)")
		occLow      = flag.Int64("occupancy-low", 0, "router: auto-drain the least-occupied worker when every member's gauge is below this (0 disables scale-in)")
		scaleEvery  = flag.Duration("autoscale-interval", 0, "router: occupancy evaluation interval (0 = health probe interval)")
		scaleCool   = flag.Duration("autoscale-cooldown", 15*time.Second, "router: minimum spacing between autoscale operations")
		verbose     = flag.Bool("v", false, "log operational events")
		logFormat   = flag.String("log-format", "text", "operational log format with -v: text | json")
		debugAddr   = flag.String("debug-addr", "", "serve pprof and /debug/traces on this separate address (e.g. localhost:6060); empty disables")
	)
	var standby multiFlag
	flag.Var(&queries, "query", "query text (repeatable)")
	flag.Var(&workers, "worker", "router: worker base URL, optionally url=data-dir (repeatable; data-dir enables dead-worker recovery)")
	flag.Var(&standby, "standby", "router: pre-provisioned fresh worker the autoscaler may join, url[=data-dir] (repeatable; requires -occupancy-high)")
	flag.Parse()

	if *queriesFile != "" {
		data, err := os.ReadFile(*queriesFile)
		if err != nil {
			log.Fatalf("sharond: %v", err)
		}
		queries = nil
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				queries = append(queries, line)
			}
		}
	}
	if len(queries) == 0 {
		queries = server.DefaultQueries
	}

	switch *role {
	case "single", "worker":
	case "router":
		if len(workers) == 0 {
			log.Fatal("sharond: -role router requires at least one -worker url[=data-dir]")
		}
		specs := make([]cluster.WorkerSpec, len(workers))
		for i, w := range workers {
			url, dir, _ := strings.Cut(w, "=")
			specs[i] = cluster.WorkerSpec{URL: strings.TrimSuffix(url, "/"), DataDir: dir}
		}
		standbySpecs := make([]cluster.WorkerSpec, len(standby))
		for i, w := range standby {
			url, dir, _ := strings.Cut(w, "=")
			standbySpecs[i] = cluster.WorkerSpec{URL: strings.TrimSuffix(url, "/"), DataDir: dir}
		}
		cfg := cluster.Config{
			Workers:           specs,
			Queries:           queries,
			VNodes:            *vnodes,
			MaxBatchBytes:     *maxBatch,
			IngestQueue:       *queue,
			ReplayBuffer:      *replayBuf,
			FanoutWriters:     *fanoutW,
			HealthEvery:       *healthEvery,
			BarrierTimeout:    *barrierTo,
			Standby:           standbySpecs,
			OccupancyHigh:     *occHigh,
			OccupancyLow:      *occLow,
			AutoScaleEvery:    *scaleEvery,
			AutoScaleCooldown: *scaleCool,
		}
		if *verbose {
			cfg.Logf = log.Printf
			cfg.Logger = buildLogger(*logFormat)
		}
		rt, err := cluster.New(cfg)
		if err != nil {
			log.Fatalf("sharond: %v", err)
		}
		startDebug(*debugAddr, rt.Handler())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(os.Stderr, "sharond: routing %d queries across %d workers on %s\n",
			len(queries), len(specs), *addr)
		if err := rt.ListenAndServe(ctx, addr2(*addr)); err != nil {
			log.Fatalf("sharond: %v", err)
		}
		fmt.Fprintln(os.Stderr, "sharond: router drained, bye")
		return
	default:
		log.Fatalf("sharond: unknown -role %q (single | worker | router)", *role)
	}

	fsync, err := persist.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("sharond: %v", err)
	}
	cfg := server.Config{
		Queries:          queries,
		Parallelism:      *parallelism,
		Dynamic:          *dynamic,
		Adaptive:         *adaptive,
		EmitEmpty:        *emitEmpty,
		MaxBatchBytes:    *maxBatch,
		IngestQueue:      *queue,
		SubscriberBuffer: *subBuf,
		FanoutWriters:    *fanoutW,
		ReplayBuffer:     *replayBuf,
		DataDir:          *dataDir,
		CheckpointEvery:  *ckptEvery,
		Fsync:            fsync,
		FsyncEvery:       *fsyncEvery,
		WALSegmentBytes:  *walSegBytes,
	}
	if *verbose {
		cfg.Logf = log.Printf
		cfg.Logger = buildLogger(*logFormat)
	}
	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("sharond: %v", err)
	}
	startDebug(*debugAddr, s.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "sharond: serving %d queries on %s (parallelism %d)\n",
		len(queries), *addr, *parallelism)
	if err := s.ListenAndServe(ctx, addr2(*addr)); err != nil {
		log.Fatalf("sharond: %v", err)
	}
	fmt.Fprintln(os.Stderr, "sharond: drained, bye")
}

// addr2 normalizes a bare port to a listen address.
func addr2(a string) string {
	if !strings.Contains(a, ":") {
		return ":" + a
	}
	return a
}

// buildLogger constructs the -v structured logger in the chosen
// format, at debug level so per-connection stream logs are visible.
func buildLogger(format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts))
	default:
		log.Fatalf("sharond: unknown -log-format %q (text | json)", format)
		return nil
	}
}

// startDebug serves the profiling surface on its own listener, kept
// off the data-plane address so an operator can firewall it
// separately: the stdlib pprof handlers plus the app's /debug/traces
// and /metrics forwarded for one-stop debugging.
func startDebug(addr string, app http.Handler) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", app)
	mux.Handle("/metrics", app)
	go func() {
		fmt.Fprintf(os.Stderr, "sharond: debug listener (pprof, traces) on %s\n", addr)
		if err := http.ListenAndServe(addr2(addr), mux); err != nil {
			log.Printf("sharond: debug listener: %v", err)
		}
	}()
}
