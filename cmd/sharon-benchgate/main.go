// Command sharon-benchgate is the bench-regression gate: it compares a
// fresh BENCH_<exp>.json (sharon-bench -json) against the committed
// reference copy and fails when per-event cost regressed beyond the
// tolerance — so CI catches performance regressions instead of only
// smoke-compiling the benchmarks.
//
// Four metrics gate, with different comparisons:
//
//   - ns/event: relative — fresh > ref * (1 + tolerance) fails. CI
//     runners are noisy, hence the generous default ±25%.
//   - allocs/event: absolute — fresh > ref + alloc-budget fails. The
//     hot path's reference is 0.00 allocs/event, where a relative
//     tolerance would be vacuous; any reintroduced per-event
//     allocation shows up as a whole unit.
//   - events/sec: relative lower bound — fresh < ref * (1 - throughput
//     tolerance) fails. Enabled with -throughput-tolerance > 0; used
//     for the server loopback gate (BENCH_server.json).
//   - p99 latency: relative upper bound — fresh > ref * (1 + latency
//     tolerance) fails, skipped when the reference has no latency
//     figure. Enabled with -latency-tolerance > 0.
//
// Besides fresh-vs-reference regression checks, -faster A:B:margin
// (repeatable) asserts an ordering *within* the fresh file: record A's
// ns/event must be at least margin below record B's (fresh[A] <=
// fresh[B] * (1 - margin)). Both rows are measured in the same process
// on the same machine, so the comparison is immune to runner-speed
// variation — it gates a relationship (e.g. "the adaptive executor
// beats the static shared plan on bursty streams"), not an absolute
// cost.
//
// Usage:
//
//	go run ./cmd/sharon-bench -exp hotpath -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_hotpath.json -ref BENCH_hotpath.json
//	go run ./cmd/sharon-bench -exp server -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_server.json -ref BENCH_server.json \
//	  -throughput-tolerance 0.25 -latency-tolerance 0.25
//	go run ./cmd/sharon-bench -exp bursty -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_bursty.json -ref BENCH_bursty.json \
//	  -faster bursty-square/adaptive:bursty-square/static-shared:0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/sharon-project/sharon/internal/harness"
)

// fasterRule is one -faster A:B:margin assertion: within the fresh file,
// record A's ns/event must be at least margin below record B's.
type fasterRule struct {
	a, b   string
	margin float64
}

// fasterFlags collects repeated -faster flags.
type fasterFlags []fasterRule

func (f *fasterFlags) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = fmt.Sprintf("%s:%s:%g", r.a, r.b, r.margin)
	}
	return strings.Join(parts, ",")
}

func (f *fasterFlags) Set(s string) error {
	// Record names contain '/' but never ':', so a plain split is safe.
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want A:B:margin, got %q", s)
	}
	margin, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || margin < 0 || margin >= 1 {
		return fmt.Errorf("margin must be a fraction in [0, 1), got %q", parts[2])
	}
	*f = append(*f, fasterRule{a: parts[0], b: parts[1], margin: margin})
	return nil
}

func load(path string) (harness.BenchFile, error) {
	var f harness.BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	var (
		freshPath   = flag.String("fresh", "", "freshly measured BENCH_<exp>.json")
		refPath     = flag.String("ref", "", "committed reference BENCH_<exp>.json")
		tolerance   = flag.Float64("tolerance", 0.25, "relative ns/event regression tolerance")
		allocBudget = flag.Float64("alloc-budget", 0.05, "absolute allocs/event regression budget")
		tputTol     = flag.Float64("throughput-tolerance", 0, "relative events/sec regression tolerance (0 = not gated)")
		latTol      = flag.Float64("latency-tolerance", 0, "relative p99 latency regression tolerance (0 = not gated)")
		faster      fasterFlags
	)
	flag.Var(&faster, "faster", "intra-fresh-file ordering gate A:B:margin — fresh[A] ns/event must be <= fresh[B] * (1-margin); repeatable")
	flag.Parse()
	if *freshPath == "" || *refPath == "" {
		log.Fatal("sharon-benchgate: -fresh and -ref are required")
	}
	fresh, err := load(*freshPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	ref, err := load(*refPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	refByName := make(map[string]harness.BenchRecord, len(ref.Records))
	for _, r := range ref.Records {
		refByName[r.Name] = r
	}

	failed := false
	compared := 0
	for _, f := range fresh.Records {
		r, ok := refByName[f.Name]
		if !ok {
			fmt.Printf("SKIP %-40s no reference record\n", f.Name)
			continue
		}
		compared++
		nsLimit := r.NsPerEvent * (1 + *tolerance)
		allocLimit := r.AllocsPerEvent + *allocBudget
		nsVerdict, allocVerdict := "ok", "ok"
		if f.NsPerEvent > nsLimit {
			nsVerdict, failed = "REGRESSED", true
		}
		if f.AllocsPerEvent > allocLimit {
			allocVerdict, failed = "REGRESSED", true
		}
		fmt.Printf("%-40s ns/event %8.1f vs ref %8.1f (limit %8.1f) %-9s  allocs/event %7.4f vs ref %7.4f (limit %7.4f) %s\n",
			f.Name, f.NsPerEvent, r.NsPerEvent, nsLimit, nsVerdict,
			f.AllocsPerEvent, r.AllocsPerEvent, allocLimit, allocVerdict)
		if *tputTol > 0 && r.EventsPerSec > 0 {
			floor := r.EventsPerSec * (1 - *tputTol)
			verdict := "ok"
			if f.EventsPerSec < floor {
				verdict, failed = "REGRESSED", true
			}
			fmt.Printf("%-40s events/sec %10.0f vs ref %10.0f (floor %10.0f) %s\n",
				f.Name, f.EventsPerSec, r.EventsPerSec, floor, verdict)
		}
		if *latTol > 0 && r.LatencyP99Ms > 0 {
			limit := r.LatencyP99Ms * (1 + *latTol)
			verdict := "ok"
			if f.LatencyP99Ms > limit {
				verdict, failed = "REGRESSED", true
			}
			fmt.Printf("%-40s p99 ms %12.2f vs ref %12.2f (limit %12.2f) %s\n",
				f.Name, f.LatencyP99Ms, r.LatencyP99Ms, limit, verdict)
		}
	}
	if compared == 0 {
		log.Fatal("sharon-benchgate: no record names matched between fresh and reference files")
	}
	freshByName := make(map[string]harness.BenchRecord, len(fresh.Records))
	for _, f := range fresh.Records {
		freshByName[f.Name] = f
	}
	for _, rule := range faster {
		a, okA := freshByName[rule.a]
		b, okB := freshByName[rule.b]
		if !okA || !okB {
			log.Fatalf("sharon-benchgate: -faster %s:%s: record not in fresh file", rule.a, rule.b)
		}
		limit := b.NsPerEvent * (1 - rule.margin)
		verdict := "ok"
		if a.NsPerEvent > limit {
			verdict, failed = "VIOLATED", true
		}
		fmt.Printf("FASTER %-30s %8.1f ns/event  <=  %-30s %8.1f * (1-%.2f) = %8.1f  %s\n",
			rule.a, a.NsPerEvent, rule.b, b.NsPerEvent, rule.margin, limit, verdict)
	}
	if failed {
		log.Fatalf("sharon-benchgate: performance regressed beyond tolerance (ns/event ±%.0f%%, allocs/event +%.2f)",
			*tolerance*100, *allocBudget)
	}
	fmt.Printf("sharon-benchgate: %d records within tolerance (ns/event +%.0f%%, allocs/event +%.2f)\n",
		compared, *tolerance*100, *allocBudget)
}
