// Command sharon-benchgate is the bench-regression gate: it compares a
// fresh BENCH_<exp>.json (sharon-bench -json) against the committed
// reference copy and fails when per-event cost regressed beyond the
// tolerance — so CI catches performance regressions instead of only
// smoke-compiling the benchmarks.
//
// Two metrics gate, with different comparisons:
//
//   - ns/event: relative — fresh > ref * (1 + tolerance) fails. CI
//     runners are noisy, hence the generous default ±25%.
//   - allocs/event: absolute — fresh > ref + alloc-budget fails. The
//     hot path's reference is 0.00 allocs/event, where a relative
//     tolerance would be vacuous; any reintroduced per-event
//     allocation shows up as a whole unit.
//
// Usage:
//
//	go run ./cmd/sharon-bench -exp hotpath -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_hotpath.json -ref BENCH_hotpath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/sharon-project/sharon/internal/harness"
)

func load(path string) (harness.BenchFile, error) {
	var f harness.BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	var (
		freshPath   = flag.String("fresh", "", "freshly measured BENCH_<exp>.json")
		refPath     = flag.String("ref", "", "committed reference BENCH_<exp>.json")
		tolerance   = flag.Float64("tolerance", 0.25, "relative ns/event regression tolerance")
		allocBudget = flag.Float64("alloc-budget", 0.05, "absolute allocs/event regression budget")
	)
	flag.Parse()
	if *freshPath == "" || *refPath == "" {
		log.Fatal("sharon-benchgate: -fresh and -ref are required")
	}
	fresh, err := load(*freshPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	ref, err := load(*refPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	refByName := make(map[string]harness.BenchRecord, len(ref.Records))
	for _, r := range ref.Records {
		refByName[r.Name] = r
	}

	failed := false
	compared := 0
	for _, f := range fresh.Records {
		r, ok := refByName[f.Name]
		if !ok {
			fmt.Printf("SKIP %-40s no reference record\n", f.Name)
			continue
		}
		compared++
		nsLimit := r.NsPerEvent * (1 + *tolerance)
		allocLimit := r.AllocsPerEvent + *allocBudget
		nsVerdict, allocVerdict := "ok", "ok"
		if f.NsPerEvent > nsLimit {
			nsVerdict, failed = "REGRESSED", true
		}
		if f.AllocsPerEvent > allocLimit {
			allocVerdict, failed = "REGRESSED", true
		}
		fmt.Printf("%-40s ns/event %8.1f vs ref %8.1f (limit %8.1f) %-9s  allocs/event %7.4f vs ref %7.4f (limit %7.4f) %s\n",
			f.Name, f.NsPerEvent, r.NsPerEvent, nsLimit, nsVerdict,
			f.AllocsPerEvent, r.AllocsPerEvent, allocLimit, allocVerdict)
	}
	if compared == 0 {
		log.Fatal("sharon-benchgate: no record names matched between fresh and reference files")
	}
	if failed {
		log.Fatalf("sharon-benchgate: performance regressed beyond tolerance (ns/event ±%.0f%%, allocs/event +%.2f)",
			*tolerance*100, *allocBudget)
	}
	fmt.Printf("sharon-benchgate: %d records within tolerance (ns/event +%.0f%%, allocs/event +%.2f)\n",
		compared, *tolerance*100, *allocBudget)
}
