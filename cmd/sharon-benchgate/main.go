// Command sharon-benchgate is the bench-regression gate: it compares a
// fresh BENCH_<exp>.json (sharon-bench -json) against the committed
// reference copy and fails when per-event cost regressed beyond the
// tolerance — so CI catches performance regressions instead of only
// smoke-compiling the benchmarks.
//
// Four metrics gate, with different comparisons:
//
//   - ns/event: relative — fresh > ref * (1 + tolerance) fails. CI
//     runners are noisy, hence the generous default ±25%.
//   - allocs/event: absolute — fresh > ref + alloc-budget fails. The
//     hot path's reference is 0.00 allocs/event, where a relative
//     tolerance would be vacuous; any reintroduced per-event
//     allocation shows up as a whole unit.
//   - events/sec: relative lower bound — fresh < ref * (1 - throughput
//     tolerance) fails. Enabled with -throughput-tolerance > 0; used
//     for the server loopback gate (BENCH_server.json).
//   - p99 latency: relative upper bound — fresh > ref * (1 + latency
//     tolerance) fails, skipped when the reference has no latency
//     figure. Enabled with -latency-tolerance > 0.
//
// Usage:
//
//	go run ./cmd/sharon-bench -exp hotpath -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_hotpath.json -ref BENCH_hotpath.json
//	go run ./cmd/sharon-bench -exp server -json /tmp/bench
//	go run ./cmd/sharon-benchgate -fresh /tmp/bench/BENCH_server.json -ref BENCH_server.json \
//	  -throughput-tolerance 0.25 -latency-tolerance 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/sharon-project/sharon/internal/harness"
)

func load(path string) (harness.BenchFile, error) {
	var f harness.BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	var (
		freshPath   = flag.String("fresh", "", "freshly measured BENCH_<exp>.json")
		refPath     = flag.String("ref", "", "committed reference BENCH_<exp>.json")
		tolerance   = flag.Float64("tolerance", 0.25, "relative ns/event regression tolerance")
		allocBudget = flag.Float64("alloc-budget", 0.05, "absolute allocs/event regression budget")
		tputTol     = flag.Float64("throughput-tolerance", 0, "relative events/sec regression tolerance (0 = not gated)")
		latTol      = flag.Float64("latency-tolerance", 0, "relative p99 latency regression tolerance (0 = not gated)")
	)
	flag.Parse()
	if *freshPath == "" || *refPath == "" {
		log.Fatal("sharon-benchgate: -fresh and -ref are required")
	}
	fresh, err := load(*freshPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	ref, err := load(*refPath)
	if err != nil {
		log.Fatalf("sharon-benchgate: %v", err)
	}
	refByName := make(map[string]harness.BenchRecord, len(ref.Records))
	for _, r := range ref.Records {
		refByName[r.Name] = r
	}

	failed := false
	compared := 0
	for _, f := range fresh.Records {
		r, ok := refByName[f.Name]
		if !ok {
			fmt.Printf("SKIP %-40s no reference record\n", f.Name)
			continue
		}
		compared++
		nsLimit := r.NsPerEvent * (1 + *tolerance)
		allocLimit := r.AllocsPerEvent + *allocBudget
		nsVerdict, allocVerdict := "ok", "ok"
		if f.NsPerEvent > nsLimit {
			nsVerdict, failed = "REGRESSED", true
		}
		if f.AllocsPerEvent > allocLimit {
			allocVerdict, failed = "REGRESSED", true
		}
		fmt.Printf("%-40s ns/event %8.1f vs ref %8.1f (limit %8.1f) %-9s  allocs/event %7.4f vs ref %7.4f (limit %7.4f) %s\n",
			f.Name, f.NsPerEvent, r.NsPerEvent, nsLimit, nsVerdict,
			f.AllocsPerEvent, r.AllocsPerEvent, allocLimit, allocVerdict)
		if *tputTol > 0 && r.EventsPerSec > 0 {
			floor := r.EventsPerSec * (1 - *tputTol)
			verdict := "ok"
			if f.EventsPerSec < floor {
				verdict, failed = "REGRESSED", true
			}
			fmt.Printf("%-40s events/sec %10.0f vs ref %10.0f (floor %10.0f) %s\n",
				f.Name, f.EventsPerSec, r.EventsPerSec, floor, verdict)
		}
		if *latTol > 0 && r.LatencyP99Ms > 0 {
			limit := r.LatencyP99Ms * (1 + *latTol)
			verdict := "ok"
			if f.LatencyP99Ms > limit {
				verdict, failed = "REGRESSED", true
			}
			fmt.Printf("%-40s p99 ms %12.2f vs ref %12.2f (limit %12.2f) %s\n",
				f.Name, f.LatencyP99Ms, r.LatencyP99Ms, limit, verdict)
		}
	}
	if compared == 0 {
		log.Fatal("sharon-benchgate: no record names matched between fresh and reference files")
	}
	if failed {
		log.Fatalf("sharon-benchgate: performance regressed beyond tolerance (ns/event ±%.0f%%, allocs/event +%.2f)",
			*tolerance*100, *allocBudget)
	}
	fmt.Printf("sharon-benchgate: %d records within tolerance (ns/event +%.0f%%, allocs/event +%.2f)\n",
		compared, *tolerance*100, *allocBudget)
}
