// Command sharon-bench regenerates the tables and figures of the Sharon
// paper's evaluation (§8). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	sharon-bench -exp table1            # Table 1 + Figure 4 analysis
//	sharon-bench -exp fig13             # two-step vs online
//	sharon-bench -exp fig14ae           # online, events per window (TX)
//	sharon-bench -exp fig14bf           # online, query count (LR)
//	sharon-bench -exp fig14cg           # online, pattern length (EC)
//	sharon-bench -exp fig15             # optimizer comparison
//	sharon-bench -exp fig16             # plan quality
//	sharon-bench -exp parallel          # sharded parallel executor scaling (not a paper figure)
//	sharon-bench -exp hotpath           # steady-state per-event engine cost (ns/event, allocs/event)
//	sharon-bench -exp bursty            # burst-adaptive share-vs-split vs static plans
//	sharon-bench -exp server            # end-to-end sharond over loopback (ev/s, ingest-to-emit latency)
//	sharon-bench -exp fanout            # broadcast egress tier: encode-once fan-out to 10k..1M subscribers
//	sharon-bench -exp all [-scale 10]   # every paper experiment (scale 10 ≈ paper size)
//
// With -json DIR, every experiment additionally writes its results as
// machine-readable BENCH_<exp>.json into DIR (events/sec, ns/event,
// allocs/event, peak live states; format documented in the README's
// "Benchmarking" section), so successive runs record a perf trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/sharon-project/sharon/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1, fig13, fig14ae, fig14bf, fig14cg, fig15, fig16, parallel, hotpath, bursty, server, wire, fanout, all")
		scale   = flag.Float64("scale", 1, "stream size multiplier (1 ≈ paper shapes at 1/10 size, 10 ≈ paper size)")
		seed    = flag.Int64("seed", 1, "generator seed")
		jsonDir = flag.String("json", "", "directory to write machine-readable BENCH_<exp>.json results into (empty: don't)")
		verbose = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	cfg := harness.Config{Scale: *scale, Seed: *seed}
	if *verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	switch *exp {
	case "all":
		out, err := harness.All(cfg)
		fail(err)
		fmt.Print(out)
	case "table1":
		out, err := harness.Table1(cfg)
		fail(err)
		fmt.Print(out)
	case "server":
		recs, err := harness.ServerBench(cfg)
		fail(err)
		fmt.Printf("server — end-to-end sharond over loopback (ingest POSTs + SSE subscription + closing watermark)\n")
		fmt.Print(harness.FormatBenchRecords(recs))
		for _, r := range recs {
			fmt.Printf("  %s: ingest-to-emit latency p50 %.2fms p99 %.2fms\n", r.Name, r.LatencyP50Ms, r.LatencyP99Ms)
		}
		writeJSON(*jsonDir, harness.BenchFile{Experiment: "server", Records: recs})
	case "fanout":
		recs, err := harness.FanoutBench(cfg)
		fail(err)
		fmt.Printf("fanout — broadcast egress tier: shared frames over mock subscribers (encode-once at 10k..1M subscribers)\n")
		fmt.Print(harness.FormatBenchRecords(recs))
		for _, r := range recs {
			if r.Note != "" {
				fmt.Printf("  %s: %s (lag p99 %.2fms)\n", r.Name, r.Note, r.LatencyP99Ms)
			}
		}
		writeJSON(*jsonDir, harness.BenchFile{Experiment: "fanout", Records: recs})
	case "wire":
		recs, err := harness.WireBench(cfg)
		fail(err)
		fmt.Printf("wire — ingest codec comparison over loopback (NDJSON vs binary vs streaming binary) + binary edge decode\n")
		fmt.Print(harness.FormatBenchRecords(recs))
		for _, r := range recs {
			if r.LatencyP50Ms > 0 || r.LatencyP99Ms > 0 {
				fmt.Printf("  %s: ingest-to-emit latency p50 %.2fms p99 %.2fms\n", r.Name, r.LatencyP50Ms, r.LatencyP99Ms)
			}
		}
		writeJSON(*jsonDir, harness.BenchFile{Experiment: "wire", Records: recs})
	case "bursty":
		recs, err := harness.Bursty(cfg)
		fail(err)
		fmt.Printf("bursty — burst-adaptive share-vs-split vs static plans (square/poisson/ramp bursts + steady control)\n")
		fmt.Print(harness.FormatBenchRecords(recs))
		for _, r := range recs {
			if r.Note != "" {
				fmt.Printf("  %s: %s\n", r.Name, r.Note)
			}
		}
		writeJSON(*jsonDir, harness.BenchFile{Experiment: "bursty", Records: recs})
	case "hotpath":
		recs, err := harness.Hotpath(cfg)
		fail(err)
		fmt.Printf("hotpath — steady-state per-event engine cost (warm engine, construction excluded)\n")
		fmt.Print(harness.FormatBenchRecords(recs))
		base := harness.HotpathBaseline
		fmt.Printf("  reference: %s  %.1f ns/event  %.2f allocs/event  (%s)\n",
			base.Executor, base.NsPerEvent, base.AllocsPerEvent, base.Note)
		writeJSON(*jsonDir, harness.BenchFile{
			Experiment: "hotpath",
			Records:    recs,
			Reference:  []harness.BenchRecord{base},
		})
	default:
		run, ok := harness.Experiments[*exp]
		if !ok {
			var ids []string
			for id := range harness.Experiments {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: table1, hotpath, %v, all\n", *exp, ids)
			os.Exit(2)
		}
		figs, err := run(cfg)
		fail(err)
		for _, f := range figs {
			fmt.Println(f.Format())
		}
		writeJSON(*jsonDir, harness.BenchFile{Experiment: *exp, Figures: figs})
	}
}

// writeJSON writes a BENCH_<exp>.json snapshot when -json is set.
func writeJSON(dir string, f harness.BenchFile) {
	if dir == "" {
		return
	}
	path, err := harness.WriteBenchFile(dir, f)
	fail(err)
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharon-bench:", err)
		os.Exit(1)
	}
}
