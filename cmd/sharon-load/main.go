// Command sharon-load drives a running sharond over loopback (or any
// address): it subscribes to the result stream, posts a bounded
// generated event stream in batches (honoring 429 backpressure), closes
// the tail with a watermark, and reports sustained ingest throughput
// plus p50/p99 ingest-to-emit latency. The received sequence numbers
// are always checked for gaps and duplicates.
//
// It is also the crash-recovery verifier: -tolerate-abort survives a
// server death mid-run and reports how far the stream got (next_index,
// last_seq in the -json report); a second invocation with -start-index
// and -resume-after continues the exact same generated stream and
// subscription after a restart, and -frames-out captures the received
// payloads so the concatenated runs can be diffed byte-for-byte against
// an uninterrupted run.
//
// Usage:
//
//	sharond &                       # default workload over types A..D
//	sharon-load -events 200000      # drive it and print the report
//
//	# crash drill (see the crash-recovery CI job):
//	sharon-load -events 200000 -tolerate-abort -no-watermark \
//	            -frames-out a.frames -json a.json            # killed mid-run
//	sharon-load -events $((200000-NEXT)) -start-index $NEXT \
//	            -resume-after $LAST -frames-out b.frames     # after restart
//
// The generated stream cycles through -types with one tick between
// events; -within/-slide must match the served workload's window so the
// driver knows which batch closes which window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/sharon-project/sharon/internal/loadgen"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "sharond base URL")
		events     = flag.Int("events", 200000, "events to send")
		startIndex = flag.Int("start-index", 0, "resume the generated stream at this event index")
		batch      = flag.Int("batch", 512, "events per ingest batch")
		rate       = flag.Float64("rate", 0, "throttle to about this many events/sec (0 = unthrottled)")
		groups     = flag.Int("groups", 16, "distinct group keys")
		types      = flag.String("types", "A,B,C,D", "event type cycle (CSV)")
		within     = flag.Int64("within", 4000, "served workload's window length in ticks")
		slide      = flag.Int64("slide", 1000, "served workload's window slide in ticks")
		resumeAt   = flag.String("resume-after", "", "subscribe with ?after=N (resume a dropped subscription; -1 replays everything retained)")
		framesOut  = flag.String("frames-out", "", "append received result payloads (one JSON line each) to this file")
		tolerate   = flag.Bool("tolerate-abort", false, "treat a mid-run server death as a reported outcome, not an error")
		noWM       = flag.Bool("no-watermark", false, "do not close the stream with a final watermark")
		jsonOut    = flag.String("json", "", "also write the report as JSON to this file")
		require    = flag.Bool("require-results", true, "exit nonzero when no results were received")
		contiguous = flag.Bool("require-contiguous", true, "exit nonzero on sequence gaps or duplicates in the received stream")
		verbose    = flag.Bool("v", false, "log phases")
	)
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:       strings.TrimSuffix(*addr, "/"),
		Events:        *events,
		StartIndex:    *startIndex,
		Batch:         *batch,
		RatePerSec:    *rate,
		Groups:        *groups,
		Types:         strings.Split(*types, ","),
		Within:        *within,
		Slide:         *slide,
		SkipWatermark: *noWM,
		TolerateAbort: *tolerate,
		FramesPath:    *framesOut,
	}
	if *resumeAt != "" {
		var after int64
		if _, err := fmt.Sscanf(*resumeAt, "%d", &after); err != nil {
			log.Fatalf("sharon-load: bad -resume-after %q", *resumeAt)
		}
		cfg.Resume, cfg.After = true, after
	}
	if *verbose {
		cfg.Progress = log.Printf
	}
	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("sharon-load: %v", err)
	}
	fmt.Printf("sharon-load: %d events in %d batches  %.0f ev/s  %d results / %d windows  seq [%d,%d] gaps=%d dups=%d  latency p50 %.2fms p99 %.2fms  (429s retried: %d, aborted: %v, next index: %d)\n",
		rep.Events, rep.Batches, rep.EventsPerSec, rep.Results, rep.Windows,
		rep.FirstSeq, rep.LastSeq, rep.SeqGaps, rep.SeqDups,
		rep.LatencyP50Ms, rep.LatencyP99Ms, rep.Rejected429, rep.Aborted, rep.NextIndex)
	if *jsonOut != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("sharon-load: %v", err)
		}
	}
	if *contiguous && (rep.SeqGaps > 0 || rep.SeqDups > 0) {
		log.Fatalf("sharon-load: received stream has %d seq gaps and %d duplicates", rep.SeqGaps, rep.SeqDups)
	}
	if *require && !rep.Aborted && rep.Results == 0 {
		log.Fatal("sharon-load: no results received")
	}
}
