// Command sharon-load drives a running sharond over loopback (or any
// address): it subscribes to the result stream, posts a bounded
// generated event stream in batches (honoring 429 backpressure), closes
// the tail with a watermark, and reports sustained ingest throughput
// plus p50/p99 ingest-to-emit latency. The received sequence numbers
// are always checked for gaps and duplicates.
//
// It is also the crash-recovery verifier: -tolerate-abort survives a
// server death mid-run and reports how far the stream got (next_index,
// last_seq in the -json report); a second invocation with -start-index
// and -resume-after continues the exact same generated stream and
// subscription after a restart, and -frames-out captures the received
// payloads so the concatenated runs can be diffed byte-for-byte against
// an uninterrupted run.
//
// Usage:
//
//	sharond &                       # default workload over types A..D
//	sharon-load -events 200000      # drive it and print the report
//
//	# crash drill (see the crash-recovery CI job):
//	sharon-load -events 200000 -tolerate-abort -no-watermark \
//	            -frames-out a.frames -json a.json            # killed mid-run
//	sharon-load -events $((200000-NEXT)) -start-index $NEXT \
//	            -resume-after $LAST -frames-out b.frames     # after restart
//
// The generated stream cycles through -types with one tick between
// events; -within/-slide must match the served workload's window so the
// driver knows which batch closes which window. -burst-ratio reshapes
// the tick spacing into a square wave (valley events -burst-ratio ticks
// apart, burst events one apart) so a sharond running -adaptive sees
// genuine stream-time rate swings — the bursty CI smoke uses it to
// assert the share/split transition counters move.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/sharon-project/sharon/internal/loadgen"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "sharond base URL")
		endpoints  = flag.String("endpoints", "", "comma-separated endpoint URLs: the first is driven (overrides -addr), the rest are additionally subscribed with per-endpoint seq-gap/dup checks (cluster drills: router first, then workers)")
		events     = flag.Int("events", 200000, "events to send")
		startIndex = flag.Int("start-index", 0, "resume the generated stream at this event index")
		batch      = flag.Int("batch", 512, "events per ingest batch")
		rate       = flag.Float64("rate", 0, "throttle to about this many events/sec (0 = unthrottled)")
		burstRatio = flag.Int("burst-ratio", 0, "square-wave the stream-time density: valley events sit this many ticks apart, burst events one apart (0 = steady; drives sharond -adaptive)")
		burstPer   = flag.Int("burst-period", 0, "full square-wave period in events with -burst-ratio (0 = default 8192)")
		groups     = flag.Int("groups", 16, "distinct group keys")
		types      = flag.String("types", "A,B,C,D", "event type cycle (CSV)")
		wire       = flag.String("wire", "ndjson", "ingest codec: ndjson, binary (one-shot binary posts), or stream (one long-lived binary connection with per-batch acks)")
		within     = flag.Int64("within", 4000, "served workload's window length in ticks")
		slide      = flag.Int64("slide", 1000, "served workload's window slide in ticks")
		resumeAt   = flag.String("resume-after", "", "subscribe with ?after=N (resume a dropped subscription; -1 replays everything retained)")
		subs       = flag.Int("subscribers", 0, "hold this many extra broadcast-tier subscriptions open for the run, each seq-checked (0 = none)")
		transport  = flag.String("transport", "sse", "swarm subscriber transport: sse | ws")
		framesOut  = flag.String("frames-out", "", "append received result payloads (one JSON line each) to this file")
		tolerate   = flag.Bool("tolerate-abort", false, "treat a mid-run server death as a reported outcome, not an error")
		noWM       = flag.Bool("no-watermark", false, "do not close the stream with a final watermark")
		still      = flag.Duration("quiesce-still", 500*time.Millisecond, "how long the subscription must stay silent before the run is considered complete (raise past rebalance stalls in cluster drills)")
		jsonOut    = flag.String("json", "", "also write the report as JSON to this file")
		require    = flag.Bool("require-results", true, "exit nonzero when no results were received")
		contiguous = flag.Bool("require-contiguous", true, "exit nonzero on sequence gaps or duplicates in the received stream")
		watch      = flag.Duration("watch", 0, "scrape /metrics at this interval during the run, printing a live one-line ticker to stderr (0 disables)")
		watchFmt   = flag.String("watch-format", "json", "-watch scrape format: json | prometheus")
		verbose    = flag.Bool("v", false, "log phases")
	)
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	var extra []string
	if *endpoints != "" {
		list := strings.Split(*endpoints, ",")
		base = strings.TrimSuffix(strings.TrimSpace(list[0]), "/")
		for _, e := range list[1:] {
			if e = strings.TrimSpace(e); e != "" {
				extra = append(extra, e)
			}
		}
	}
	cfg := loadgen.Config{
		BaseURL:        base,
		ExtraEndpoints: extra,
		Events:         *events,
		StartIndex:     *startIndex,
		Batch:          *batch,
		RatePerSec:     *rate,
		BurstRatio:     *burstRatio,
		BurstPeriod:    *burstPer,
		Groups:         *groups,
		Types:          strings.Split(*types, ","),
		Within:         *within,
		Slide:          *slide,
		Wire:           *wire,
		SkipWatermark:  *noWM,
		TolerateAbort:  *tolerate,
		FramesPath:     *framesOut,
		QuiesceStill:   *still,
		Subscribers:    *subs,
		SubTransport:   *transport,
	}
	if *resumeAt != "" {
		var after int64
		if _, err := fmt.Sscanf(*resumeAt, "%d", &after); err != nil {
			log.Fatalf("sharon-load: bad -resume-after %q", *resumeAt)
		}
		cfg.Resume, cfg.After = true, after
	}
	if *verbose {
		cfg.Progress = log.Printf
	}
	if *watch > 0 {
		ctx, stopWatch := context.WithCancel(context.Background())
		defer stopWatch()
		go func() {
			_ = loadgen.Watch(ctx, loadgen.WatchConfig{
				BaseURL: base,
				Format:  *watchFmt,
				Every:   *watch,
			})
		}()
	}
	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("sharon-load: %v", err)
	}
	fmt.Printf("sharon-load: %d events in %d batches  %.0f ev/s  %d results / %d windows  seq [%d,%d] gaps=%d dups=%d  latency p50 %.2fms p90 %.2fms p99 %.2fms p999 %.2fms max %.2fms  (429s retried: %d, aborted: %v, next index: %d)\n",
		rep.Events, rep.Batches, rep.EventsPerSec, rep.Results, rep.Windows,
		rep.FirstSeq, rep.LastSeq, rep.SeqGaps, rep.SeqDups,
		rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms, rep.LatencyP999Ms, rep.LatencyMaxMs,
		rep.Rejected429, rep.Aborted, rep.NextIndex)
	for _, ep := range rep.Endpoints {
		fmt.Printf("sharon-load: endpoint %s  %d results  seq [%d,%d] gaps=%d dups=%d  closed=%v terminal=%q\n",
			ep.URL, ep.Results, ep.FirstSeq, ep.LastSeq, ep.SeqGaps, ep.SeqDups, ep.Closed, ep.Terminal)
	}
	if sw := rep.Swarm; sw != nil {
		fmt.Printf("sharon-load: swarm %d/%d connected (%s)  %d frames  gaps=%d dups=%d  eof=%d dropped_slow=%d dropped_filtered=%d unexplained=%d\n",
			sw.Connected, sw.Subscribers, *transport, sw.Results, sw.SeqGaps, sw.SeqDups,
			sw.CleanEOF, sw.DroppedSlow, sw.DroppedFiltered, sw.Unexplained)
	}
	if *jsonOut != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("sharon-load: %v", err)
		}
	}
	// Exit-code contract: a seq gap or duplicate is a correctness
	// failure and exits non-zero regardless of -tolerate-abort (abort
	// tolerance covers the server going away, never a corrupted result
	// sequence). An extra endpoint whose stream simply closed (the
	// drill's kill target) is exempt only from the no-results check.
	failed := false
	if *contiguous {
		if rep.SeqGaps > 0 || rep.SeqDups > 0 {
			log.Printf("sharon-load: FAIL: received stream has %d seq gaps and %d duplicates", rep.SeqGaps, rep.SeqDups)
			failed = true
		}
		for _, ep := range rep.Endpoints {
			if ep.SeqGaps > 0 || ep.SeqDups > 0 {
				log.Printf("sharon-load: FAIL: endpoint %s has %d seq gaps and %d duplicates", ep.URL, ep.SeqGaps, ep.SeqDups)
				failed = true
			}
		}
		if sw := rep.Swarm; sw != nil && (sw.SeqGaps > 0 || sw.SeqDups > 0) {
			log.Printf("sharon-load: FAIL: swarm has %d seq gaps and %d duplicates", sw.SeqGaps, sw.SeqDups)
			failed = true
		}
	}
	if sw := rep.Swarm; sw != nil {
		if sw.Connected < int64(sw.Subscribers) {
			log.Printf("sharon-load: FAIL: only %d/%d swarm subscribers connected", sw.Connected, sw.Subscribers)
			failed = true
		}
		if sw.Unexplained > 0 {
			log.Printf("sharon-load: FAIL: %d swarm streams ended without a terminal frame", sw.Unexplained)
			failed = true
		}
	}
	if *require && !rep.Aborted && rep.Results == 0 {
		log.Print("sharon-load: FAIL: no results received")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
