// Command sharon-load drives a running sharond over loopback (or any
// address): it subscribes to the result stream, posts a bounded
// generated event stream in batches (honoring 429 backpressure), closes
// the tail with a watermark, and reports sustained ingest throughput
// plus p50/p99 ingest-to-emit latency.
//
// Usage:
//
//	sharond &                       # default workload over types A..D
//	sharon-load -events 200000      # drive it and print the report
//
// The generated stream cycles through -types with one tick between
// events; -within/-slide must match the served workload's window so the
// driver knows which batch closes which window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/sharon-project/sharon/internal/loadgen"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "sharond base URL")
		events  = flag.Int("events", 200000, "events to send")
		batch   = flag.Int("batch", 512, "events per ingest batch")
		groups  = flag.Int("groups", 16, "distinct group keys")
		types   = flag.String("types", "A,B,C,D", "event type cycle (CSV)")
		within  = flag.Int64("within", 4000, "served workload's window length in ticks")
		slide   = flag.Int64("slide", 1000, "served workload's window slide in ticks")
		jsonOut = flag.String("json", "", "also write the report as JSON to this file")
		require = flag.Bool("require-results", true, "exit nonzero when no results were received")
		verbose = flag.Bool("v", false, "log phases")
	)
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL: strings.TrimSuffix(*addr, "/"),
		Events:  *events,
		Batch:   *batch,
		Groups:  *groups,
		Types:   strings.Split(*types, ","),
		Within:  *within,
		Slide:   *slide,
	}
	if *verbose {
		cfg.Progress = log.Printf
	}
	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("sharon-load: %v", err)
	}
	fmt.Printf("sharon-load: %d events in %d batches  %.0f ev/s  %d results / %d windows  latency p50 %.2fms p99 %.2fms  (429s retried: %d)\n",
		rep.Events, rep.Batches, rep.EventsPerSec, rep.Results, rep.Windows,
		rep.LatencyP50Ms, rep.LatencyP99Ms, rep.Rejected429)
	if *jsonOut != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("sharon-load: %v", err)
		}
	}
	if *require && rep.Results == 0 {
		log.Fatal("sharon-load: no results received")
	}
}
