// Command sharonvet machine-enforces the engine's invariants: the
// zero-allocation hot path, the StartRec slab lifecycle, deterministic
// emission order, WAL-before-apply in the durable pump, I/O-free
// critical sections, and Close discipline on engine handles. See
// internal/analysis for the analyzer suite and the annotation syntax.
//
// Two modes share the analyzers:
//
//	sharonvet [dir]                           standalone: analyze the module
//	go vet -vettool=$(command -v sharonvet) ./...   vettool: cached per-package CI gate
//
// Exit status: 0 clean, 1 tool error, 2 findings.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/sharon-project/sharon/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			// No analyzer flags; cmd/go validates its flag pass-through
			// against this list.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(analysis.RunVettool(args[0], analysis.Analyzers(), os.Stderr))
		}
	}
	os.Exit(standalone(args))
}

// standalone analyzes the module rooted at args[0] (default ".").
func standalone(args []string) int {
	dir := "."
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") && args[0] != "./..." {
		dir = args[0]
	}
	start := time.Now()
	n, err := analysis.RunStandalone(dir, analysis.Analyzers(), os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharonvet: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "sharonvet: %d finding(s) in %s\n", n, time.Since(start).Round(time.Millisecond))
	if n > 0 {
		return 2
	}
	return 0
}

// printVersion implements the -V=full handshake cmd/go uses to derive
// a content ID for its action cache: the line embeds a hash of the
// executable, so rebuilding the tool invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("sharonvet version devel buildID=%x\n", h.Sum(nil))
}
