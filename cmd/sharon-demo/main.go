// Command sharon-demo runs an end-to-end demonstration: it generates a
// stream for one of the paper's scenarios, optimizes the workload, executes
// it with the shared online executor, and prints the sharing plan, sample
// results, and run statistics next to the non-shared baseline.
//
//	sharon-demo -workload traffic -events 100000
//	sharon-demo -workload purchases -events 50000 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"

	sharon "github.com/sharon-project/sharon"
)

func main() {
	var (
		workload = flag.String("workload", "traffic", "traffic or purchases")
		events   = flag.Int("events", 100000, "stream length")
		keys     = flag.Int("keys", 20, "distinct vehicles/customers")
		compare  = flag.Bool("compare", true, "also run the non-shared baseline")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var (
		reg    *event.Registry
		w      query.Workload
		stream event.Stream
	)
	switch *workload {
	case "traffic":
		tr := gen.Traffic()
		reg, w = tr.Reg, tr.Workload
		types := make([]event.Type, reg.Count())
		for i := range types {
			types[i] = event.Type(i + 1)
		}
		stream = gen.Generate(gen.StreamConfig{
			Types: types, NumKeys: *keys, Events: *events,
			StartRate: 1000, EndRate: 1000, Seed: *seed,
		})
	case "purchases":
		pw := gen.Purchases()
		reg, w = pw.Reg, pw.Workload
		stream = gen.Ecommerce(reg, gen.EcommerceConfig{Customers: *keys, Events: *events, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "sharon-demo: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	rates := sharon.MeasureRates(stream, w)
	sys, err := sharon.NewSystem(w, sharon.Options{Rates: rates})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fmt.Printf("workload: %d queries over %d event types, %d events\n", len(w), reg.Count(), len(stream))
	fmt.Printf("sharing plan (score %.4g):\n  %s\n", sys.PlanScore(), sys.FormatPlan(reg))
	fmt.Printf("\nper-query decomposition:\n%s\n", sys.Explain(reg))

	start := time.Now()
	if err := sys.ProcessAll(stream); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	results := sys.Results()
	fmt.Printf("Sharon executor: %d results in %v (%.0f events/s, peak %d aggregate states)\n",
		len(results), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds(), sys.PeakMemoryStates())

	fmt.Println("\nsample results (query, window, group -> value):")
	for i, r := range results {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(results)-8)
			break
		}
		q := w[r.Query]
		fmt.Printf("  %-4s win=%-6d group=%-4d %s = %.0f\n",
			q.Label(), r.Win, r.Group, q.Agg.Format(reg), sharon.Value(r, q))
	}

	if *compare {
		base, err := sharon.NewSystem(w, sharon.Options{Strategy: sharon.StrategyNonShared})
		if err != nil {
			fatal(err)
		}
		defer base.Close()
		start = time.Now()
		if err := base.ProcessAll(stream); err != nil {
			fatal(err)
		}
		baseElapsed := time.Since(start)
		fmt.Printf("\nA-Seq baseline:  %d results in %v (%.0f events/s, peak %d aggregate states)\n",
			base.ResultCount(), baseElapsed.Round(time.Millisecond),
			float64(len(stream))/baseElapsed.Seconds(), base.PeakMemoryStates())
		fmt.Printf("speed-up: %.2fx   memory: %.2fx less\n",
			baseElapsed.Seconds()/elapsed.Seconds(),
			float64(base.PeakMemoryStates())/float64(sys.PeakMemoryStates()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sharon-demo:", err)
	os.Exit(1)
}
