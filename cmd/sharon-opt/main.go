// Command sharon-opt runs the Sharon optimizer on a workload and prints
// the sharable patterns, the Sharon graph, the reduction statistics, and
// the chosen sharing plan, comparing the Sharon, greedy, and (when
// feasible) exhaustive strategies.
//
// Workloads come either from a file of queries (one per line, SASE-style
// syntax; lines starting with # are comments) or from the built-in paper
// workloads:
//
//	sharon-opt -workload traffic
//	sharon-opt -workload purchases
//	sharon-opt -file queries.txt -rates "OakSt=20,MainSt=45"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
	"github.com/sharon-project/sharon/internal/query"
)

func main() {
	var (
		workload = flag.String("workload", "traffic", "built-in workload: traffic or purchases")
		file     = flag.String("file", "", "file with one query per line (overrides -workload)")
		ratesArg = flag.String("rates", "", "comma-separated Type=rate pairs (default: uniform 10/s)")
		budget   = flag.Duration("budget", 10*time.Second, "plan finder time budget")
		expand   = flag.Bool("expand", true, "apply §7.1 conflict-resolution expansion")
	)
	flag.Parse()

	reg, w, err := loadWorkload(*workload, *file)
	if err != nil {
		fatal(err)
	}
	rates, err := loadRates(*ratesArg, reg, w)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload: %d queries\n", len(w))
	for _, q := range w {
		fmt.Printf("  %-4s %s\n", q.Label()+":", q.Format(reg))
	}

	cands := core.FindCandidates(w)
	fmt.Printf("\nsharable patterns (modified CCSpan, Appendix A): %d\n", len(cands))
	for _, c := range cands {
		fmt.Printf("  %s\n", c.Format(reg, w))
	}

	model := core.NewCostModel(w, rates)
	g := core.BuildGraph(model, cands)
	fmt.Printf("\nSharon graph: %d beneficial candidates, %d conflicts\n", g.NumVertices(), g.NumEdges())
	fmt.Print(g.Format(reg, w))
	fmt.Printf("GWMIN guaranteed weight (Eq. 10): %.4g\n", g.GuaranteedWeight())

	for _, strat := range []core.Strategy{core.StrategyGreedy, core.StrategySharon, core.StrategyExhaustive} {
		opts := core.OptimizerOptions{Strategy: strat, Expand: *expand && strat != core.StrategyGreedy, Budget: *budget}
		if strat == core.StrategyExhaustive && g.NumVertices() > 22 {
			fmt.Printf("\n%-10s: skipped (graph too large for subset enumeration)\n", strat)
			continue
		}
		res, err := core.Optimize(w, rates, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%-10s: score=%.4g elapsed=%v\n", strat, res.Score, res.TotalElapsed.Round(time.Microsecond))
		for _, ph := range res.Phases {
			fmt.Printf("  phase %-7s %10v  (%d entries)\n", ph.Name, ph.Elapsed.Round(time.Microsecond), ph.LiveStates)
		}
		if strat == core.StrategySharon {
			fmt.Printf("  reduction: %d conflict-ridden pruned, %d conflict-free, %d valid plans considered\n",
				res.PrunedConflictRidden, res.ConflictFree, res.FinderStats.PlansConsidered)
		}
		fmt.Printf("  plan: %s\n", res.Plan.Format(reg, w))
	}
}

func loadWorkload(name, file string) (*event.Registry, query.Workload, error) {
	if file != "" {
		reg := event.NewRegistry()
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var w query.Workload
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			q, err := query.Parse(text, reg)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: %w", file, line, err)
			}
			w = append(w, q)
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		w.Renumber()
		return reg, w, nil
	}
	switch name {
	case "traffic":
		tr := gen.Traffic()
		return tr.Reg, tr.Workload, nil
	case "purchases":
		pw := gen.Purchases()
		return pw.Reg, pw.Workload, nil
	}
	return nil, nil, fmt.Errorf("unknown workload %q (want traffic or purchases)", name)
}

func loadRates(arg string, reg *event.Registry, w query.Workload) (core.Rates, error) {
	rates := core.Rates{}
	for t := range w.Types() {
		rates[t] = 10
	}
	if arg == "" {
		return rates, nil
	}
	for _, pair := range strings.Split(arg, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad rate %q (want Type=rate)", pair)
		}
		t := reg.Lookup(kv[0])
		if t == event.NoType {
			return nil, fmt.Errorf("unknown event type %q", kv[0])
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate value %q: %w", kv[1], err)
		}
		rates[t] = v
	}
	return rates, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sharon-opt:", err)
	os.Exit(1)
}
