package sharon

import (
	"fmt"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/exec"
)

// PartitionedSystem evaluates a workload whose queries differ in windows,
// grouping, or predicates (paper §7.2): queries are partitioned into
// uniform segments, each optimized and executed by its own shared engine.
// Within a segment Sharon shares exactly as in System; across segments
// nothing is shared, matching the paper's segment-orthogonality argument.
type PartitionedSystem struct {
	p       *exec.Partitioned
	collect bool
}

// NewPartitionedSystem optimizes and compiles each uniform segment of the
// workload. Queries keep their global IDs in results.
func NewPartitionedSystem(w Workload, opts Options) (*PartitionedSystem, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	rates := opts.Rates
	if rates == nil {
		rates = Rates{}
		for t := range w.Types() {
			rates[t] = 1
		}
	}
	budget := opts.OptimizerBudget
	if budget == 0 {
		budget = 10 * time.Second
	}
	strat := core.StrategySharon
	switch opts.Strategy {
	case StrategyGreedy:
		strat = core.StrategyGreedy
	case StrategyNonShared:
		strat = core.StrategyNone
	case StrategyTwoStep, StrategySPASS:
		return nil, fmt.Errorf("sharon: partitioned execution supports online strategies only")
	}
	collect := opts.OnResult == nil
	p, err := exec.NewPartitioned(w, rates, exec.Options{
		OnResult:  opts.OnResult,
		Collect:   collect,
		EmitEmpty: opts.EmitEmpty,
	}, core.OptimizerOptions{
		Strategy: strat,
		Expand:   strat == core.StrategySharon,
		Budget:   budget,
	})
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	return &PartitionedSystem{p: p, collect: collect}, nil
}

// Segments reports how many uniform segments the workload split into.
func (s *PartitionedSystem) Segments() int { return s.p.Segments() }

// SegmentPlan returns segment i's queries and sharing plan.
func (s *PartitionedSystem) SegmentPlan(i int) (Workload, Plan) { return s.p.SegmentPlan(i) }

// Process feeds the next event (strictly time-ordered).
func (s *PartitionedSystem) Process(e Event) error { return s.p.Process(e) }

// ProcessAll replays a stream and flushes.
func (s *PartitionedSystem) ProcessAll(stream Stream) error {
	for _, e := range stream {
		if err := s.p.Process(e); err != nil {
			return err
		}
	}
	return s.p.Flush()
}

// Flush closes every window containing events seen so far.
func (s *PartitionedSystem) Flush() error { return s.p.Flush() }

// Results returns collected results (only when OnResult was nil).
func (s *PartitionedSystem) Results() []Result {
	if !s.collect {
		return nil
	}
	return s.p.Results()
}

// ResultCount reports the number of aggregates emitted so far.
func (s *PartitionedSystem) ResultCount() int64 { return s.p.ResultCount() }

// PeakMemoryStates reports the summed peak live aggregate states.
func (s *PartitionedSystem) PeakMemoryStates() int64 { return s.p.PeakLiveStates() }
