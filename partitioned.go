package sharon

import (
	"fmt"
	"runtime"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/exec"
)

// PartitionedSystem evaluates a workload whose queries differ in windows,
// grouping, or predicates (paper §7.2): queries are partitioned into
// uniform segments, each optimized and executed by its own shared engine.
// Within a segment Sharon shares exactly as in System; across segments
// nothing is shared, matching the paper's segment-orthogonality argument.
//
// With Options.Parallelism != 1 the independent segments are distributed
// across worker goroutines (segment sharding) and window results are
// merged back in deterministic (window end, query ID, group) order; see
// Options.Parallelism.
type PartitionedSystem struct {
	executor exec.Executor
	specs    []exec.SegmentSpec
	collect  bool
}

// NewPartitionedSystem optimizes and compiles each uniform segment of the
// workload. Queries keep their global IDs in results.
func NewPartitionedSystem(w Workload, opts Options) (*PartitionedSystem, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	rates := opts.Rates
	if rates == nil {
		rates = Rates{}
		for t := range w.Types() {
			rates[t] = 1
		}
	}
	budget := opts.OptimizerBudget
	if budget == 0 {
		budget = 10 * time.Second
	}
	strat := core.StrategySharon
	switch opts.Strategy {
	case StrategyGreedy:
		strat = core.StrategyGreedy
	case StrategyNonShared:
		strat = core.StrategyNone
	case StrategyTwoStep, StrategySPASS:
		return nil, fmt.Errorf("sharon: partitioned execution supports online strategies only")
	}
	collect := opts.OnResult == nil
	execOpts := exec.Options{
		OnResult:  opts.OnResult,
		Collect:   collect,
		EmitEmpty: opts.EmitEmpty,
	}
	optOpts := core.OptimizerOptions{
		Strategy: strat,
		Expand:   strat == core.StrategySharon,
		Budget:   budget,
	}

	specs, err := exec.PlanSegments(w, rates, optOpts)
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	sys := &PartitionedSystem{specs: specs, collect: collect}
	// Segment sharding scales with the segment count: auto parallelism
	// engages when several segments and several procs are available;
	// a single uniform segment gains nothing from broadcast dispatch.
	// Segments shard regardless of grouping, hence grouped=true here.
	workers := resolveParallelism(opts.Parallelism, true, opts.OnResult != nil)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers > 1 {
		p, err := exec.NewParallelPartitioned(specs, workers, execOpts)
		if err != nil {
			return nil, fmt.Errorf("sharon: %w", err)
		}
		sys.executor = p
		reclaimOnDrop(sys, p)
		return sys, nil
	}
	seq, err := exec.NewPartitionedFromSpecs(specs, execOpts)
	if err != nil {
		return nil, fmt.Errorf("sharon: %w", err)
	}
	sys.executor = seq
	return sys, nil
}

// Segments reports how many uniform segments the workload split into.
func (s *PartitionedSystem) Segments() int { return len(s.specs) }

// SegmentPlan returns segment i's queries and sharing plan.
func (s *PartitionedSystem) SegmentPlan(i int) (Workload, Plan) {
	return s.specs[i].Workload, s.specs[i].Plan
}

// Process feeds the next event (strictly time-ordered).
func (s *PartitionedSystem) Process(e Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Process(e)
}

// FeedBatch feeds a batch of strictly time-ordered events.
func (s *PartitionedSystem) FeedBatch(events []Event) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return feedBatch(s.executor, events)
}

// ProcessAll replays a stream and flushes. On a feed error the run is
// stopped without emitting partial windows.
func (s *PartitionedSystem) ProcessAll(stream Stream) error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	if err := s.FeedBatch(stream); err != nil {
		stopParallel(s.executor)
		return err
	}
	return s.Flush()
}

// Flush closes every window containing events seen so far.
func (s *PartitionedSystem) Flush() error {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	return s.executor.Flush()
}

// AdvanceWatermark closes every window (in every segment) ending at or
// before t and emits its results without consuming an event; see
// System.AdvanceWatermark for the full contract.
func (s *PartitionedSystem) AdvanceWatermark(t int64) {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	advanceWatermark(s.executor, t)
}

// Close releases the executor without emitting the windows still open;
// see System.Close. Idempotent, and safe after Flush.
func (s *PartitionedSystem) Close() {
	defer runtime.KeepAlive(s) // see reclaimOnDrop
	stopParallel(s.executor)
}

// Results returns collected results, sorted by query, window, group.
// When an OnResult sink is attached the system does not retain results
// and Results always returns nil (see System.Results). On the parallel
// path results are available only after Flush (nil before).
func (s *PartitionedSystem) Results() []Result { return collectedResults(s.executor, s.collect) }

// ResultCount reports the number of aggregates emitted so far.
func (s *PartitionedSystem) ResultCount() int64 { return s.executor.ResultCount() }

// PeakMemoryStates reports the summed peak live aggregate states. On
// the parallel path the sum is computed at Flush time (0 before).
func (s *PartitionedSystem) PeakMemoryStates() int64 { return s.executor.PeakLiveStates() }

// ParallelStats reports the parallel executor's counters; the zero value
// when the system runs sequentially.
func (s *PartitionedSystem) ParallelStats() ParallelStats { return parallelStats(s.executor) }
