// Ablation benchmarks for the optimizer's design choices called out in
// DESIGN.md: the GWMIN-bound graph reduction (§5), the invalid-branch
// pruning of the plan finder vs. exhaustive enumeration (§6), and the
// conflict-resolution expansion (§7.1). Each pair isolates one mechanism
// on the same input.
package sharon_test

import (
	"testing"
	"time"

	"github.com/sharon-project/sharon/internal/core"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/exec"
	"github.com/sharon-project/sharon/internal/gen"
)

// ablationGraph builds the conflict-rich corridor graph used by all
// optimizer ablations.
func ablationGraph(b *testing.B, nq int) (*core.Graph, *core.CostModel) {
	b.Helper()
	wcfg := gen.WorkloadConfig{
		Mode:       gen.ModeCorridor,
		NumQueries: nq, PatternLen: 8, CorridorLen: 10, SliceLen: 4,
		Window: 60000, Slide: 6000,
		GroupBy: true, Seed: 1,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	sample := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), 20000, 20, 3000, 3, 1)
	rates := perGroupRates(sample, w)
	model := core.NewCostModel(w, rates)
	g := core.BuildGraph(model, core.FindCandidates(w))
	if g.NumVertices() < 8 {
		b.Fatalf("ablation graph too small: %d vertices", g.NumVertices())
	}
	return g, model
}

// BenchmarkAblationReduction compares the plan finder with and without
// the §5 GWMIN-bound reduction on the same graph.
func BenchmarkAblationReduction(b *testing.B) {
	g, _ := ablationGraph(b, 40)
	b.Run("with-reduction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			red := core.Reduce(g)
			_, score, _ := core.FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
			if score <= 0 {
				b.Fatal("no plan")
			}
		}
	})
	b.Run("without-reduction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, score, _ := core.FindOptimalPlan(g, nil, time.Time{})
			if score <= 0 {
				b.Fatal("no plan")
			}
		}
	})
}

// BenchmarkAblationPlanFinderVsExhaustive compares the Apriori-style
// valid-space traversal (§6) against full subset enumeration.
func BenchmarkAblationPlanFinderVsExhaustive(b *testing.B) {
	g, _ := ablationGraph(b, 40)
	if g.NumVertices() > 22 {
		b.Skipf("graph has %d vertices; exhaustive ablation needs <= 22", g.NumVertices())
	}
	b.Run("plan-finder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.FindOptimalPlan(g, nil, time.Time{})
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ExhaustivePlanSearch(g)
		}
	})
}

// BenchmarkAblationExpansion measures the cost and the score gain of the
// §7.1 conflict-resolution expansion.
func BenchmarkAblationExpansion(b *testing.B) {
	g, model := ablationGraph(b, 40)
	cfg := core.ExpandConfig{MaxOptionsPerCandidate: 8, MaxTotalVertices: 512}

	b.Run("without-expansion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			red := core.Reduce(g)
			core.FindOptimalPlan(red.Reduced, red.ConflictFree, time.Time{})
		}
	})
	b.Run("with-expansion", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eg := model.Expand(g, cfg)
			red := core.Reduce(eg)
			core.FindOptimalPlan(red.Reduced, red.ConflictFree, time.Now().Add(5*time.Second))
		}
	})
}

// BenchmarkAblationSharedVsNonShared quantifies the shared executor's
// snapshot-based combination against the non-shared engine on a
// duplicate-heavy workload: the difference is the paper's
// count-combination overhead (Eq. 5) versus repeated computation (Eq. 3).
func BenchmarkAblationSharedVsNonShared(b *testing.B) {
	s := setupChunks(b, 24, 10, 16000, 8000)
	b.Run("shared", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, s.plan, exec.Options{}) }, s.stream)
	})
	b.Run("non-shared", func(b *testing.B) {
		runExecutor(b, func() (exec.Executor, error) { return exec.NewEngine(s.w, nil, exec.Options{}) }, s.stream)
	})
}
