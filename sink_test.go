// Public-API tests for the OnResult sink contract: push-based emission
// order, the Results()/sink exclusivity, and watermark-driven emission
// without a terminal Flush. These pin the contracts the sharond server
// builds on (internal/server).
package sharon_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	sharon "github.com/sharon-project/sharon"
)

// pushOrder returns rs re-sorted into the sink's delivery order —
// (window end, query ID, group); with uniform windows the window index
// stands in for the end. Results() reports query-major order instead, so
// tests comparing a collected reference against a pushed sequence sort
// the reference first.
func pushOrder(rs []sharon.Result) []sharon.Result {
	out := append([]sharon.Result(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Win != out[j].Win {
			return out[i].Win < out[j].Win
		}
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// TestSinkDeterministicOrder pins the sink's delivery order: a
// sequential system pushes results in exactly the (window end, query ID,
// group) order — the same order Results() reports after a collect run —
// so a subscriber sees the canonical stream without re-sorting.
func TestSinkDeterministicOrder(t *testing.T) {
	w, stream := genGrouped(t, 6, 5000, 10)
	rates := sharon.MeasureRates(stream, w)

	collect, err := sharon.NewSystem(w, sharon.Options{Rates: rates, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer collect.Close()
	if err := collect.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want := pushOrder(collect.Results())
	if len(want) == 0 {
		t.Fatal("collect run produced no results")
	}

	var pushed []sharon.Result
	sink, err := sharon.NewSystem(w, sharon.Options{
		Rates:       rates,
		Parallelism: 1,
		OnResult:    func(r sharon.Result) { pushed = append(pushed, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := sink.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, pushed, "sequential sink order")

	// The parallel merge delivers the identical sequence.
	var mu sync.Mutex
	var par []sharon.Result
	psys, err := sharon.NewSystem(w, sharon.Options{
		Rates:       rates,
		Parallelism: 4,
		OnResult: func(r sharon.Result) {
			mu.Lock()
			par = append(par, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer psys.Close()
	if err := psys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	requireIdentical(t, want, par, "parallel sink order")
}

// TestResultsWithSinkContract pins the Results()/sink duality: a system
// with an attached OnResult sink never retains results — Results()
// returns nil before and after Flush, on every system kind, while
// ResultCount still reports the delivered total. The sink is the single
// consumer; there is no snapshot racing with the callback.
func TestResultsWithSinkContract(t *testing.T) {
	w, stream := genGrouped(t, 4, 3000, 8)
	rates := sharon.MeasureRates(stream, w)

	check := func(t *testing.T, name string, sys interface {
		ProcessAll(sharon.Stream) error
		Results() []sharon.Result
		ResultCount() int64
	}, delivered *int64) {
		t.Helper()
		if got := sys.Results(); got != nil {
			t.Fatalf("%s: Results() before feed = %d results, want nil", name, len(got))
		}
		if err := sys.ProcessAll(stream); err != nil {
			t.Fatal(err)
		}
		if got := sys.Results(); got != nil {
			t.Fatalf("%s: Results() with sink attached = %d results, want nil", name, len(got))
		}
		if *delivered == 0 {
			t.Fatalf("%s: sink received no results", name)
		}
		if sys.ResultCount() != *delivered {
			t.Fatalf("%s: ResultCount() = %d, sink received %d", name, sys.ResultCount(), *delivered)
		}
	}

	t.Run("system-sequential", func(t *testing.T) {
		var n int64
		sys, err := sharon.NewSystem(w, sharon.Options{Rates: rates, Parallelism: 1,
			OnResult: func(sharon.Result) { n++ }})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "System(seq)", sys, &n)
	})
	t.Run("system-parallel", func(t *testing.T) {
		var n int64 // callback runs on the merge goroutine, read after Flush
		sys, err := sharon.NewSystem(w, sharon.Options{Rates: rates, Parallelism: 4,
			OnResult: func(sharon.Result) { n++ }})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "System(par)", sys, &n)
	})
	t.Run("partitioned", func(t *testing.T) {
		var n int64
		sys, err := sharon.NewPartitionedSystem(w, sharon.Options{Rates: rates, Parallelism: 1,
			OnResult: func(sharon.Result) { n++ }})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "PartitionedSystem", sys, &n)
	})
	t.Run("dynamic", func(t *testing.T) {
		var n int64
		sys, err := sharon.NewDynamicSystem(w, rates, sharon.DynamicOptions{Parallelism: 1,
			OnResult: func(sharon.Result) { n++ }})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "DynamicSystem", sys, &n)
	})
}

// waitForCount polls an atomic-ish counter until it reaches want; the
// parallel path delivers results asynchronously after a watermark.
func waitForCount(t *testing.T, label string, count func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: delivered %d results, want %d", label, count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdvanceWatermarkEmitsWithoutFlush pins watermark-driven emission:
// on an unbounded stream no terminal Flush is needed — advancing the
// watermark past the last window's end pushes every result through the
// sink, sequentially and in parallel, matching a flushed run exactly.
func TestAdvanceWatermarkEmitsWithoutFlush(t *testing.T) {
	w, stream := genGrouped(t, 4, 4000, 8)
	rates := sharon.MeasureRates(stream, w)
	win := w[0].Window
	winEnd := win.End(win.LastContaining(stream[len(stream)-1].Time))

	// Split where (a) at least two windows have closed, so a mid-stream
	// watermark must push something, and (b) a time gap follows, so the
	// watermark stream[split-1].Time+1 makes no later event late.
	split := 0
	for i := 1; i < len(stream); i++ {
		if stream[i-1].Time > win.End(1) && stream[i].Time > stream[i-1].Time+1 {
			split = i
			break
		}
	}
	if split == 0 {
		t.Fatal("no usable split point in generated stream")
	}

	ref, err := sharon.NewSystem(w, sharon.Options{Rates: rates, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want := pushOrder(ref.Results())
	if len(want) == 0 {
		t.Fatal("reference run produced no results")
	}

	for _, par := range []int{1, 4} {
		var mu sync.Mutex
		var got []sharon.Result
		sys, err := sharon.NewSystem(w, sharon.Options{
			Rates:       rates,
			Parallelism: par,
			OnResult: func(r sharon.Result) {
				mu.Lock()
				got = append(got, r)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		count := func() int64 {
			mu.Lock()
			defer mu.Unlock()
			return int64(len(got))
		}
		if err := sys.FeedBatch(stream[:split]); err != nil {
			t.Fatal(err)
		}
		// A mid-stream watermark forces timely emission of every window
		// closed so far — the parallel path must not sit on partial
		// batches below the dispatch threshold.
		sys.AdvanceWatermark(stream[split-1].Time + 1)
		waitForCount(t, "mid-stream watermark", count, 1)
		if err := sys.FeedBatch(stream[split:]); err != nil {
			t.Fatal(err)
		}
		sys.AdvanceWatermark(winEnd)
		waitForCount(t, "final watermark", count, int64(len(want)))
		sys.Close() // the watermark delivered everything; Close only reclaims
		mu.Lock()
		requireIdentical(t, want, got, "watermark-driven emission")
		mu.Unlock()
	}
}
