package main

import (
	"fmt"
	"os"

	sharon "github.com/sharon-project/sharon"
)

func run(parallelism int) ([]sharon.Result, error) {
	reg := sharon.NewRegistry()
	workload := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [key] WITHIN 100s SLIDE 50s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WHERE [key] WITHIN 100s SLIDE 50s", reg),
	}
	workload.Renumber()
	sys, err := sharon.NewSystem(workload, sharon.Options{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	names := []string{"A", "B", "C"}
	for t := int64(1); t <= 5000; t++ {
		e := sharon.Event{Time: t * 100, Type: reg.Intern(names[t%3]), Key: sharon.GroupKey(t % 7), Val: 1}
		if err := sys.Process(e); err != nil {
			return nil, err
		}
	}
	if err := sys.Flush(); err != nil {
		return nil, err
	}
	return sys.Results(), nil
}

func main() {
	seq, err := run(1)
	if err != nil {
		fmt.Println("seq:", err)
		os.Exit(1)
	}
	par, err := run(4)
	if err != nil {
		fmt.Println("par:", err)
		os.Exit(1)
	}
	if len(seq) == 0 || len(seq) != len(par) {
		fmt.Println("result count mismatch:", len(seq), len(par))
		os.Exit(1)
	}
	for i := range seq {
		if seq[i] != par[i] {
			fmt.Println("mismatch at", i, seq[i], par[i])
			os.Exit(1)
		}
	}

	// Error path: non-increasing Time must be rejected.
	reg := sharon.NewRegistry()
	wl := sharon.Workload{sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10s SLIDE 5s", reg)}
	wl.Renumber()
	sys, err := sharon.NewSystem(wl, sharon.Options{})
	if err != nil {
		fmt.Println("new:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if err := sys.Process(sharon.Event{Time: 10, Type: reg.Intern("A")}); err != nil {
		fmt.Println("first:", err)
		os.Exit(1)
	}
	if err := sys.Process(sharon.Event{Time: 10, Type: reg.Intern("B")}); err == nil {
		fmt.Println("out-of-order event not rejected")
		os.Exit(1)
	}
	fmt.Printf("OK: %d results, sequential == parallel(4) byte-identical; out-of-order rejected\n", len(seq))
}
