#!/usr/bin/env python3
"""Validate a Prometheus text exposition (v0.0.4) and assert sample values.

Usage:
    promcheck.py FILE [ASSERTION...]

Each ASSERTION is `series==value` or `series>=value`, where series is a
metric name with optional {label=value,...} selector (order-insensitive,
subset match):

    promcheck.py metrics.prom \
        'sharon_events_ingested_total==100000' \
        'sharon_stage_latency_seconds_count{stage=apply}==391' \
        'sharon_share_transitions_total>=1'

Beyond the assertions, the whole file is structurally validated: every
sample line must parse, every histogram's le buckets must be cumulative
and close with +Inf, and each histogram's _count must equal its +Inf
bucket. Exits nonzero with a diagnostic on the first violation.
"""

import re
import sys

SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf|NaN|\+Inf))$'
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse(path):
    samples = []  # (name, {labels}, value)
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SAMPLE.match(line)
            if not m:
                sys.exit(f"{path}:{lineno}: unparseable sample line: {line!r}")
            name, _, rawlabels, rawval = m.groups()
            labels = {}
            if rawlabels:
                consumed = 0
                for lm in LABEL.finditer(rawlabels):
                    labels[lm.group(1)] = (
                        lm.group(2)
                        .replace(r"\"", '"')
                        .replace(r"\n", "\n")
                        .replace("\\\\", "\\")
                    )
                    consumed = lm.end()
                rest = rawlabels[consumed:].strip(", ")
                if rest:
                    sys.exit(f"{path}:{lineno}: trailing label garbage: {rest!r}")
            samples.append((name, labels, float(rawval)))
    return samples


def check_histograms(samples):
    # Group _bucket series by (family, non-le labels).
    groups = {}
    for name, labels, val in samples:
        if not name.endswith("_bucket") or "le" not in labels:
            continue
        key = (name[: -len("_bucket")], tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
        groups.setdefault(key, []).append((float(labels["le"]), val))
    counts = {
        (name[: -len("_count")], tuple(sorted(labels.items()))): val
        for name, labels, val in samples
        if name.endswith("_count")
    }
    for (fam, labels), buckets in groups.items():
        buckets.sort(key=lambda b: b[0])
        if buckets[-1][0] != float("inf"):
            sys.exit(f"histogram {fam}{dict(labels)} does not close with +Inf")
        prev = -1.0
        for le, cum in buckets:
            if cum < prev:
                sys.exit(f"histogram {fam}{dict(labels)} not cumulative at le={le}")
            prev = cum
        want = counts.get((fam, labels))
        if want is not None and want != buckets[-1][1]:
            sys.exit(
                f"histogram {fam}{dict(labels)}: _count {want} != +Inf bucket {buckets[-1][1]}"
            )


def lookup(samples, expr):
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$', expr)
    if not m:
        sys.exit(f"bad series selector: {expr!r}")
    name, rawsel = m.groups()
    want = {}
    if rawsel:
        for part in rawsel.split(","):
            k, _, v = part.partition("=")
            want[k.strip()] = v.strip().strip('"')
    hits = [
        val
        for n, labels, val in samples
        if n == name and all(labels.get(k) == v for k, v in want.items())
    ]
    if not hits:
        sys.exit(f"no sample matches {expr!r}")
    if len(hits) > 1:
        sys.exit(f"{len(hits)} samples match {expr!r}; tighten the selector")
    return hits[0]


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    samples = parse(sys.argv[1])
    if not samples:
        sys.exit(f"{sys.argv[1]}: no samples at all")
    check_histograms(samples)
    for assertion in sys.argv[2:]:
        if ">=" in assertion:
            op = ">="
        else:
            op = "=="
        series, _, want = assertion.partition(op)
        if not want:
            sys.exit(f"bad assertion (need series==value or series>=value): {assertion!r}")
        got = lookup(samples, series.strip())
        ok = got >= float(want) if op == ">=" else got == float(want)
        if not ok:
            sys.exit(f"FAIL: {series.strip()} = {got}, want {op} {want}")
        print(f"ok: {series.strip()} {op} {want}")
    print(f"{sys.argv[1]}: {len(samples)} samples, exposition valid")


if __name__ == "__main__":
    main()
