// Dynamic re-optimization (paper §7.4): the stream's hot corridor shifts
// at runtime, flipping which of two *conflicting* sharing candidates is
// beneficial. q1's pattern contains both (OakSt, MainSt) and (MainSt,
// WestSt), which overlap at MainSt — the executor can share only one of
// them (Definition 6). While Oak-side traffic dominates, sharing
// (OakSt, MainSt) with q2 wins; when the rush moves to the Park/West
// side, sharing (MainSt, WestSt) with q3 wins. The DynamicSystem detects
// the rate drift, re-optimizes, and migrates plans mid-stream without
// losing or corrupting any window result.
//
// Run:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	sharon "github.com/sharon-project/sharon"
)

func main() {
	reg := sharon.NewRegistry()
	texts := []string{
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, WestSt) WITHIN 30s SLIDE 5s",
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, ElmSt) WITHIN 30s SLIDE 5s",
		"RETURN COUNT(*) PATTERN SEQ(ParkAve, MainSt, WestSt) WITHIN 30s SLIDE 5s",
	}
	var workload sharon.Workload
	for _, t := range texts {
		workload = append(workload, sharon.MustParseQuery(t, reg))
	}
	workload.Renumber()

	stream := shiftingStream(reg, 200_000)

	// Seed the optimizer with rates measured on the first phase only —
	// they become stale when the rush hour moves.
	warmup := stream[:20_000]
	sys, err := sharon.NewDynamicSystem(workload, sharon.MeasureRates(warmup, workload), sharon.DynamicOptions{
		DriftThreshold: 0.4,
		OnMigrate: func(at int64, old, new sharon.Plan) {
			fmt.Printf("t=%6.1fs: rate drift — migrating %s -> %s\n",
				float64(at)/sharon.TicksPerSecond,
				old.Format(reg, workload), new.Format(reg, workload))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("initial plan: %s\n", sys.Plan().Format(reg, workload))

	if err := sys.ProcessAll(stream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final plan:   %s\n", sys.Plan().Format(reg, workload))
	fmt.Printf("migrations: %d, results: %d\n", sys.Migrations(), len(sys.Results()))
}

// shiftingStream emits position reports whose popularity flips halfway:
// first OakSt and ElmSt are hot (the Oak corridor), then ParkAve and
// WestSt (the Park corridor). MainSt, the arterial both corridors cross,
// stays constant.
func shiftingStream(reg *sharon.Registry, n int) sharon.Stream {
	type weighted struct {
		name string
		a, b int // per-phase weights
	}
	table := []weighted{
		{"OakSt", 45, 3},
		{"ElmSt", 25, 3},
		{"MainSt", 18, 18},
		{"ParkAve", 3, 45},
		{"WestSt", 3, 25},
	}
	rng := rand.New(rand.NewSource(3))
	stream := make(sharon.Stream, n)
	for i := range stream {
		phaseB := i > n/2
		total := 0
		for _, w := range table {
			if phaseB {
				total += w.b
			} else {
				total += w.a
			}
		}
		x := rng.Intn(total)
		var name string
		for _, w := range table {
			wt := w.a
			if phaseB {
				wt = w.b
			}
			if x < wt {
				name = w.name
				break
			}
			x -= wt
		}
		stream[i] = sharon.Event{
			Time: int64(i+1) * 4, // 250 reports/second
			Type: reg.Intern(name),
			Key:  sharon.GroupKey(rng.Intn(8)),
		}
	}
	return stream
}
