// Traffic monitoring: the paper's Figure 1 workload q1–q7.
//
// Seven queries count vehicle trips along overlapping street sequences
// over a stream of position reports (10-minute windows sliding every
// minute, grouped by vehicle). The optimizer finds Table 1's sharing
// candidates, weighs them with the benefit model, resolves conflicts, and
// the executor shares the aggregation of the chosen patterns among all
// subscribed queries.
//
// Run:
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"

	sharon "github.com/sharon-project/sharon"
)

func main() {
	reg := sharon.NewRegistry()
	texts := []string{
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, StateSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, WestSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(ParkAve, OakSt, MainSt, WestSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(MainSt, StateSt) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(ElmSt, ParkAve) WHERE [vehicle] WITHIN 10m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(ElmSt, ParkAve) WHERE [vehicle] WITHIN 10m SLIDE 1m",
	}
	var workload sharon.Workload
	for _, t := range texts {
		workload = append(workload, sharon.MustParseQuery(t, reg))
	}
	workload.Renumber()

	stream := positionReports(reg, 120_000, 25)
	rates := sharon.MeasureRates(stream, workload)

	// Inspect the sharing candidates the optimizer considers (Table 1).
	fmt.Println("sharable patterns:")
	for _, c := range sharon.FindCandidates(workload) {
		fmt.Printf("  %s\n", c.Pattern.Format(reg))
	}

	sys, err := sharon.NewSystem(workload, sharon.Options{Rates: rates})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("\nchosen plan (score %.4g):\n  %s\n\n", sys.PlanScore(), sys.FormatPlan(reg))

	if err := sys.ProcessAll(stream); err != nil {
		log.Fatal(err)
	}

	// Report the most popular route per query: the (window, vehicle) pair
	// with the highest trip count.
	best := map[int]sharon.Result{}
	for _, r := range sys.Results() {
		q := workload[r.Query]
		if cur, ok := best[r.Query]; !ok || sharon.Value(r, q) > sharon.Value(cur, q) {
			best[r.Query] = r
		}
	}
	fmt.Printf("%d aggregates emitted; busiest (window, vehicle) per query:\n", sys.ResultCount())
	for _, q := range workload {
		r, ok := best[q.ID]
		if !ok {
			fmt.Printf("  %-4s no matches\n", q.Label())
			continue
		}
		fmt.Printf("  %-4s window %-4d vehicle %-4d trips=%.0f  %s\n",
			q.Label(), r.Win, r.Group, sharon.Value(r, q), q.Pattern.Format(reg))
	}
}

// positionReports simulates vehicles driving the six-street grid: each
// vehicle follows a random walk biased along the popular Oak->Main
// corridor and reports its street once per tick slot.
func positionReports(reg *sharon.Registry, n, vehicles int) sharon.Stream {
	streets := []string{"OakSt", "MainSt", "ParkAve", "WestSt", "StateSt", "ElmSt"}
	weights := []int{25, 30, 15, 10, 12, 8} // Main/Oak are arterial
	var wheel []sharon.Type
	for i, s := range streets {
		t := reg.Intern(s)
		for k := 0; k < weights[i]; k++ {
			wheel = append(wheel, t)
		}
	}
	rng := rand.New(rand.NewSource(42))
	stream := make(sharon.Stream, n)
	for i := range stream {
		stream[i] = sharon.Event{
			Time: int64(i+1) * 7, // ~143 reports/second
			Type: wheel[rng.Intn(len(wheel))],
			Key:  sharon.GroupKey(rng.Intn(vehicles)),
			Val:  30 + rng.Float64()*60, // speed
		}
	}
	return stream
}
