// E-commerce purchase monitoring: the paper's Figure 2 workload q8–q11,
// extended with value aggregation.
//
// Four queries track purchase sequences that start with (Laptop, Case) —
// the pattern all four share — during 20-minute windows sliding every
// minute, grouped by customer. Beyond the paper's COUNT(*), this example
// also computes SUM and AVG of purchase prices to exercise the full
// aggregation algebra riding the same shared engine.
//
// Run:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	sharon "github.com/sharon-project/sharon"
)

func main() {
	reg := sharon.NewRegistry()
	texts := []string{
		"RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) WHERE [customer] WITHIN 20m SLIDE 1m",
		"RETURN COUNT(*) PATTERN SEQ(Laptop, Case, KeyboardProtector) WHERE [customer] WITHIN 20m SLIDE 1m",
		"RETURN SUM(Mouse.val) PATTERN SEQ(Laptop, Case, Mouse) WHERE [customer] WITHIN 20m SLIDE 1m",
		"RETURN AVG(ScreenShield.val) PATTERN SEQ(Laptop, Case, IPhone, ScreenShield) WHERE [customer] WITHIN 20m SLIDE 1m",
	}
	var workload sharon.Workload
	for _, t := range texts {
		workload = append(workload, sharon.MustParseQuery(t, reg))
	}
	workload.Renumber()
	for i := range workload {
		workload[i].Name = fmt.Sprintf("q%d", i+8) // paper numbering
	}

	stream := purchases(reg, 150_000, 5)
	sys, err := sharon.NewSystem(workload, sharon.Options{
		Rates: sharon.MeasureRates(stream, workload),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("sharing plan (score %.4g):\n  %s\n\n", sys.PlanScore(), sys.FormatPlan(reg))

	if err := sys.ProcessAll(stream); err != nil {
		log.Fatal(err)
	}

	// Aggregate across windows/customers for a compact report.
	totals := make(map[int]float64)
	counts := make(map[int]int)
	for _, r := range sys.Results() {
		q := workload[r.Query]
		v := sharon.Value(r, q)
		if math.IsNaN(v) {
			continue
		}
		totals[r.Query] += v
		counts[r.Query]++
	}
	fmt.Println("per-query summary (mean over all window/customer results):")
	for _, q := range workload {
		if counts[q.ID] == 0 {
			fmt.Printf("  %-4s no matches\n", q.Label())
			continue
		}
		fmt.Printf("  %-4s %-14s mean=%.2f over %d results\n",
			q.Label(), q.Agg.Format(reg), totals[q.ID]/float64(counts[q.ID]), counts[q.ID])
	}
}

// purchases simulates customers buying items: a laptop purchase boosts the
// chance of cases, adapters, and accessories shortly after — the purchase
// dependency the paper's workload mines.
func purchases(reg *sharon.Registry, n, customers int) sharon.Stream {
	items := []string{"Laptop", "Case", "Adapter", "KeyboardProtector", "Mouse", "IPhone", "ScreenShield",
		"Monitor", "Desk", "Chair", "Lamp", "Cable"}
	price := map[string]float64{
		"Laptop": 1200, "Case": 40, "Adapter": 25, "KeyboardProtector": 15,
		"Mouse": 30, "IPhone": 900, "ScreenShield": 12,
		"Monitor": 300, "Desk": 250, "Chair": 150, "Lamp": 35, "Cable": 8,
	}
	types := make(map[string]sharon.Type, len(items))
	for _, it := range items {
		types[it] = reg.Intern(it)
	}
	rng := rand.New(rand.NewSource(7))
	// boosted[customer] counts recent laptop purchases: the next items by
	// that customer are very likely a case (the dependency all four
	// queries share), occasionally another accessory.
	boosted := make([]int, customers)
	accessories := []string{"Adapter", "KeyboardProtector", "Mouse", "IPhone", "ScreenShield"}

	stream := make(sharon.Stream, n)
	for i := range stream {
		c := rng.Intn(customers)
		var item string
		switch x := rng.Float64(); {
		case boosted[c] > 0 && x < 0.6:
			item = "Case"
			boosted[c]--
		case boosted[c] > 0 && x < 0.72:
			item = accessories[rng.Intn(len(accessories))]
			boosted[c]--
		case x < 0.25:
			item = "Laptop"
			boosted[c] = 3
		default:
			// Background purchases unrelated to the laptop line.
			item = items[7+rng.Intn(len(items)-7)]
		}
		stream[i] = sharon.Event{
			Time: int64(i + 1), // ~1000 purchases/second at peak load
			Type: types[item],
			Key:  sharon.GroupKey(c),
			Val:  price[item] * (0.8 + 0.4*rng.Float64()),
		}
	}
	return stream
}
