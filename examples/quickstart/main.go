// Quickstart: two queries sharing the aggregation of a common pattern.
//
// The stream below is the paper's Fig. 7 example: events a1 b2 c3 d4 a5 b6
// c7 d8 in one window. Query q1 counts matches of SEQ(A,B,C,D); query q2
// counts matches of SEQ(C,D). The optimizer detects that (C, D) is
// sharable and the executor computes its aggregates once for both queries.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sharon "github.com/sharon-project/sharon"
)

func main() {
	reg := sharon.NewRegistry()
	workload := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WITHIN 10s SLIDE 10s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(C, D) WITHIN 10s SLIDE 10s", reg),
	}
	workload.Renumber()

	// a1 b2 c3 d4 a5 b6 c7 d8 (timestamps in milliseconds).
	var stream sharon.Stream
	for i, name := range []string{"A", "B", "C", "D", "A", "B", "C", "D"} {
		stream = append(stream, sharon.Event{
			Time: int64(i+1) * 1000,
			Type: reg.Intern(name),
		})
	}

	// Rates drive the benefit model (Eq. 1–8): C and D are frequent, so
	// sharing the aggregation of (C, D) pays off. On a live deployment,
	// use sharon.MeasureRates on a stream sample instead.
	rates := sharon.Rates{
		reg.Intern("A"): 10, reg.Intern("B"): 10,
		reg.Intern("C"): 50, reg.Intern("D"): 50,
	}
	sys, err := sharon.NewSystem(workload, sharon.Options{Rates: rates})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Println("sharing plan:", sys.FormatPlan(reg))

	if err := sys.ProcessAll(stream); err != nil {
		log.Fatal(err)
	}
	for _, r := range sys.Results() {
		q := workload[r.Query]
		fmt.Printf("%s window %d: COUNT(*) = %.0f\n", q.Label(), r.Win, sharon.Value(r, q))
	}
	// Output:
	//   q1 window 0: COUNT(*) = 5   (abcd, abc d8, ab c7d8, a b6c7d8, a5b6c7d8)
	//   q2 window 0: COUNT(*) = 3   (c3d4, c3d8, c7d8)
}
