// Public-API tests for Options.Parallelism: the sharded parallel
// executors must produce byte-identical results to the sequential path
// on the paper workload generator, for grouped, partitioned, and dynamic
// systems. Run with -race (CI does) to exercise the worker/merge
// concurrency.
package sharon_test

import (
	"testing"

	sharon "github.com/sharon-project/sharon"
	"github.com/sharon-project/sharon/internal/event"
	"github.com/sharon-project/sharon/internal/gen"
)

// genGrouped builds a grouped multi-query chunk workload and a matching
// stream from the paper generator.
func genGrouped(t *testing.T, nq, events, keys int) (sharon.Workload, sharon.Stream) {
	t.Helper()
	wcfg := gen.WorkloadConfig{
		NumQueries: nq, PatternLen: 6,
		SharedChunks: 3, ChunkLen: 2, ChunksPerQuery: 2, FillerPool: 10,
		Window: 5000, Slide: 1000,
		GroupBy: true, Seed: 3,
	}
	w, types := gen.GenWorkload(event.NewRegistry(), wcfg)
	stream := gen.StreamForWorkload(types, gen.NumHotTypes(wcfg), events, keys, 500, 3, 3)
	return w, stream
}

// requireIdentical compares full result sets byte-for-byte.
func requireIdentical(t *testing.T, want, got []sharon.Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestParallelismMatchesSequential is the public acceptance check:
// Parallelism: N equals Parallelism: 1 byte-for-byte on a grouped
// multi-query workload, for the shared and non-shared strategies.
func TestParallelismMatchesSequential(t *testing.T) {
	w, stream := genGrouped(t, 8, 6000, 12)
	rates := sharon.MeasureRates(stream, w)
	for _, strat := range []sharon.Strategy{sharon.StrategySharon, sharon.StrategyNonShared} {
		seq, err := sharon.NewSystem(w, sharon.Options{Strategy: strat, Rates: rates, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer seq.Close()
		if err := seq.ProcessAll(stream); err != nil {
			t.Fatal(err)
		}
		want := seq.Results()
		if len(want) == 0 {
			t.Fatal("sequential system produced no results")
		}
		for _, par := range []int{2, 4} {
			sys, err := sharon.NewSystem(w, sharon.Options{Strategy: strat, Rates: rates, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if err := sys.ProcessAll(stream); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, sys.Results(), "parallelism="+string(rune('0'+par)))
			st := sys.ParallelStats()
			if st.Workers != par {
				t.Fatalf("ParallelStats.Workers = %d, want %d", st.Workers, par)
			}
			if st.EventsFed != int64(len(stream)) {
				t.Fatalf("ParallelStats.EventsFed = %d, want %d", st.EventsFed, len(stream))
			}
		}
	}
}

// TestParallelismFeedBatch checks the batched entry point end to end.
func TestParallelismFeedBatch(t *testing.T) {
	w, stream := genGrouped(t, 4, 3000, 8)
	seq, err := sharon.NewSystem(w, sharon.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if err := seq.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	sys, err := sharon.NewSystem(w, sharon.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Feed in uneven chunks to cross batch boundaries.
	for i := 0; i < len(stream); {
		j := i + 700
		if j > len(stream) {
			j = len(stream)
		}
		if err := sys.FeedBatch(stream[i:j]); err != nil {
			t.Fatal(err)
		}
		i = j
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, seq.Results(), sys.Results(), "feedbatch")
}

// TestParallelismExplain checks plan introspection survives sharding.
func TestParallelismExplain(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WHERE [vehicle] WITHIN 10s SLIDE 5s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, D) WHERE [vehicle] WITHIN 10s SLIDE 5s", reg),
	}
	w.Renumber()
	cands := sharon.FindCandidates(w)
	sys, err := sharon.NewSystem(w, sharon.Options{Plan: sharon.Plan{cands[0]}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if s := sys.Explain(reg); s == "" {
		t.Error("Explain returned nothing under Parallelism: 2")
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPartitionedSystem checks §7.2 segment sharding through the
// public API on a mixed-window/predicate workload.
func TestParallelPartitionedSystem(t *testing.T) {
	reg := sharon.NewRegistry()
	w := sharon.Workload{
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [key] WITHIN 4s SLIDE 2s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B, C) WHERE [key] WITHIN 4s SLIDE 2s", reg),
		sharon.MustParseQuery("RETURN SUM(C.val) PATTERN SEQ(B, C) WHERE [key] WITHIN 8s SLIDE 4s", reg),
		sharon.MustParseQuery("RETURN COUNT(*) PATTERN SEQ(A, C) WHERE A.val > 40 WITHIN 6s SLIDE 3s", reg),
	}
	w.Renumber()
	types := []sharon.Type{reg.Lookup("A"), reg.Lookup("B"), reg.Lookup("C")}
	stream := gen.StreamForWorkload(types, 3, 4000, 6, 400, 1, 9)

	seq, err := sharon.NewPartitionedSystem(w, sharon.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if err := seq.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want := seq.Results()
	if len(want) == 0 {
		t.Fatal("sequential partitioned system produced no results")
	}

	sys, err := sharon.NewPartitionedSystem(w, sharon.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Segments() != seq.Segments() {
		t.Fatalf("segments = %d, want %d", sys.Segments(), seq.Segments())
	}
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, sys.Results(), "partitioned")
	if st := sys.ParallelStats(); st.Workers < 2 {
		t.Fatalf("expected parallel partitioned run, got %d workers", st.Workers)
	}
}

// TestParallelDynamicSystem checks §7.4 sharding through the public API:
// independently migrating shards still produce the sequential results.
func TestParallelDynamicSystem(t *testing.T) {
	w, stream := genGrouped(t, 4, 5000, 8)
	rates := sharon.MeasureRates(stream[:500], w)

	seq, err := sharon.NewDynamicSystem(w, rates, sharon.DynamicOptions{DriftThreshold: 0.3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if err := seq.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	want := seq.Results()
	if len(want) == 0 {
		t.Fatal("sequential dynamic system produced no results")
	}

	var migrations int
	sys, err := sharon.NewDynamicSystem(w, rates, sharon.DynamicOptions{
		DriftThreshold: 0.3,
		Parallelism:    4,
		OnMigrate:      func(at int64, old, new sharon.Plan) { migrations++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ProcessAll(stream); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, sys.Results(), "dynamic")
	if sys.Migrations() != migrations {
		t.Fatalf("Migrations() = %d, callbacks = %d", sys.Migrations(), migrations)
	}
	_ = sys.Plan() // post-flush introspection must not panic
}
