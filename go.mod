module github.com/sharon-project/sharon

go 1.24
